//! Control-plane state shared between the coordinator, every open
//! [`crate::ingest::SourceHandle`], the time-trigger flusher and the
//! epoch driver: the sequence allocator, the stream clock, the shutdown
//! flag, the source registry and the [`QuiesceGate`] that makes plan
//! installs lossless under concurrent producers.

use crate::ingest::source::SourceSlot;
use crate::parallel::router::{DepthGauges, Progress};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// The two-phase admission gate of the quiesce protocol.
///
/// Producers wrap the routing section of every push in [`enter`] /
/// [`GatePass`]-drop; the engine wraps a plan install in [`quiesce`] /
/// [`Quiesced`]-drop. `pause` first closes the gate (new pushes block on
/// the condvar instead of routing against a plan about to be replaced)
/// and then waits until every push that already entered has finished
/// routing and buffering its deliveries. At that point every allocated
/// sequence number has its deliveries in some batch buffer, so the
/// engine's flush + drain barrier covers them completely — no push can be
/// routed against a stale plan and none can be dropped by a worker that
/// already switched plans. `resume` (on [`Quiesced`] drop, so a panicking
/// install cannot leave producers blocked forever) reopens the gate and
/// wakes every blocked push, which then routes against the new plan.
///
/// Pausing blocks *new* entrants before waiting for active ones, so a
/// continuous stream of producers cannot starve the quiescer; the wait is
/// bounded by the in-flight pushes' routing work (no push holds the gate
/// across a channel wait or the admission gate).
///
/// [`enter`]: QuiesceGate::enter
/// [`quiesce`]: QuiesceGate::quiesce
#[derive(Debug, Default)]
pub(crate) struct QuiesceGate {
    state: Mutex<GateState>,
    /// Producers wait here while the gate is paused.
    admit: Condvar,
    /// The quiescer waits here for the active pushes to drain.
    idle: Condvar,
}

#[derive(Debug, Default)]
struct GateState {
    paused: bool,
    active: usize,
}

/// Proof that one push is inside the gate; dropping it releases the slot
/// (and wakes a waiting quiescer once the last active push exits).
#[derive(Debug)]
pub(crate) struct GatePass<'a> {
    gate: &'a QuiesceGate,
}

impl Drop for GatePass<'_> {
    fn drop(&mut self) {
        let mut state = self.gate.state.lock().expect("quiesce gate");
        state.active -= 1;
        if state.active == 0 {
            self.gate.idle.notify_all();
        }
    }
}

/// Proof that the gate is paused and no push is mid-route; dropping it
/// resumes admission.
#[derive(Debug)]
pub(crate) struct Quiesced<'a> {
    gate: &'a QuiesceGate,
}

impl Drop for Quiesced<'_> {
    fn drop(&mut self) {
        let mut state = self.gate.state.lock().expect("quiesce gate");
        state.paused = false;
        drop(state);
        self.gate.admit.notify_all();
    }
}

impl QuiesceGate {
    /// Enters the gate for one push, blocking while an install is in
    /// progress.
    pub fn enter(&self) -> GatePass<'_> {
        let mut state = self.state.lock().expect("quiesce gate");
        while state.paused {
            state = self.admit.wait(state).expect("quiesce gate");
        }
        state.active += 1;
        GatePass { gate: self }
    }

    /// Pauses admission and waits for every active push to exit. The
    /// returned guard resumes admission on drop.
    pub fn quiesce(&self) -> Quiesced<'_> {
        let mut state = self.state.lock().expect("quiesce gate");
        state.paused = true;
        while state.active > 0 {
            state = self.idle.wait(state).expect("quiesce gate");
        }
        Quiesced { gate: self }
    }
}

/// Everything the ingestion endpoints and the background control-plane
/// threads share with the engine, behind one `Arc`.
#[derive(Debug)]
pub(crate) struct ControlShared {
    /// Next root sequence number to allocate (roots start at 1). One
    /// shared allocator, so concurrent producers draw from a single
    /// logical serial order.
    pub next_seq: AtomicU64,
    /// Maximum stream timestamp (millis) pushed through *any* producer.
    /// The epoch driver derives the current epoch from this clock without
    /// taking any lock.
    pub stream_clock: AtomicU64,
    /// Set by `ParallelEngine::shutdown` before the workers are joined;
    /// ingestion endpoints then return [`clash_common::ClashError::Shutdown`]
    /// instead of silently dropping tuples.
    pub shutdown: AtomicBool,
    /// The install-time producer gate (see [`QuiesceGate`]).
    pub gate: QuiesceGate,
    /// Global completion progress (watermark over fully processed roots).
    pub progress: Arc<Progress>,
    /// Every registered producer slot — the coordinator's own micro-batch
    /// buffer plus one per open source — swept by the flusher and the
    /// admission/drain loops.
    pub sources: Mutex<Vec<Arc<SourceSlot>>>,
    /// Per-worker channel-depth gauges shared by every batch buffer
    /// (producers bump the enqueue side) and every worker thread (drain
    /// side); read by the telemetry surface.
    pub depth: Arc<DepthGauges>,
}

impl ControlShared {
    /// Fresh state with an empty registry, sized for `workers` channels.
    pub fn new(workers: usize) -> Self {
        ControlShared {
            next_seq: AtomicU64::new(1),
            stream_clock: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            gate: QuiesceGate::default(),
            progress: Arc::new(Progress::default()),
            sources: Mutex::new(Vec::new()),
            depth: Arc::new(DepthGauges::new(workers)),
        }
    }

    /// Folds a pushed timestamp into the stream clock.
    pub fn advance_clock(&self, ts_millis: u64) {
        self.stream_clock.fetch_max(ts_millis, Ordering::AcqRel);
    }

    /// Roots allocated so far (the realized length of the serial order).
    pub fn sequenced(&self) -> u64 {
        self.next_seq.load(Ordering::Acquire).saturating_sub(1)
    }

    /// Whether the engine has been shut down.
    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// Snapshot of the registered slots (registry lock held only for the
    /// clone).
    pub fn slots(&self) -> Vec<Arc<SourceSlot>> {
        self.sources.lock().expect("source registry").clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    #[test]
    fn quiesce_waits_for_active_pushes_and_blocks_new_ones() {
        let gate = Arc::new(QuiesceGate::default());
        let in_flight = Arc::new(AtomicUsize::new(0));

        // An active push holding the gate.
        let pass = gate.enter();
        let g2 = gate.clone();
        let quiescer = std::thread::spawn(move || {
            let _q = g2.quiesce();
            // While quiesced, no push may be active.
        });
        // The quiescer cannot finish while the pass is held.
        std::thread::sleep(Duration::from_millis(20));
        assert!(!quiescer.is_finished(), "quiesce returned with active push");
        drop(pass);
        quiescer.join().expect("quiescer");

        // A paused gate blocks new entrants until resumed.
        let q = gate.quiesce();
        let g3 = gate.clone();
        let c3 = in_flight.clone();
        let pusher = std::thread::spawn(move || {
            let _pass = g3.enter();
            c3.fetch_add(1, Ordering::SeqCst);
        });
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(
            in_flight.load(Ordering::SeqCst),
            0,
            "push passed a paused gate"
        );
        drop(q);
        pusher.join().expect("pusher");
        assert_eq!(in_flight.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn control_shared_clock_is_monotonic() {
        let shared = ControlShared::new(1);
        shared.advance_clock(50);
        shared.advance_clock(20);
        assert_eq!(shared.stream_clock.load(Ordering::Acquire), 50);
        shared.advance_clock(80);
        assert_eq!(shared.stream_clock.load(Ordering::Acquire), 80);
    }
}
