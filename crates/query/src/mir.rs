//! Materializable intermediate results (MIRs).
//!
//! An MIR of a query is a subset of the queried relations together with the
//! join predicates defined on them *such that cross products are avoided*
//! (Section V of the paper) — i.e. a connected subgraph of the join graph.
//! MIRs are the unit from which candidate probe orders are constructed and
//! the candidate stores an optimizer may decide to materialize.
//!
//! As analyzed in Section V-A, a clique query over `n` relations has `2^n`
//! MIRs while a linear (chain) query only has `n(n+1)/2`; the enumeration
//! below therefore carries an optional size cap to keep the plan space of
//! large queries manageable.

use crate::query::JoinQuery;
use clash_common::RelationSet;
use serde::{Deserialize, Serialize};

/// A materializable intermediate result: a connected subset of a query's
/// relations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Mir {
    /// The base relations covered by this intermediate result.
    pub relations: RelationSet,
}

impl Mir {
    /// Creates an MIR from a relation set.
    pub fn new(relations: RelationSet) -> Self {
        Mir { relations }
    }

    /// Number of base relations covered.
    pub fn size(&self) -> usize {
        self.relations.len()
    }

    /// `true` if this MIR is a single base relation (always materialized —
    /// input relations are stored unconditionally, Section V).
    pub fn is_base(&self) -> bool {
        self.relations.len() == 1
    }
}

/// Enumerates all MIRs of a query: every connected, non-empty subset of the
/// query's relations with at most `max_size` members (`None` = no limit).
///
/// The result is sorted by `(size, bitmap)` so base relations come first and
/// the output is deterministic.
pub fn enumerate_mirs(query: &JoinQuery, max_size: Option<usize>) -> Vec<Mir> {
    let graph = query.graph();
    let relations: Vec<_> = query.relations.iter().collect();
    let n = relations.len();
    let cap = max_size.unwrap_or(n).min(n);

    // Breadth-first growth of connected subsets: start from singletons and
    // repeatedly add a neighboring relation. A set is only expanded by
    // relations with a larger index than its seed minimum to avoid
    // generating the same subset along multiple orders; membership dedup is
    // still needed because different seeds can reach the same set, so we
    // collect into a sorted, deduplicated vector at the end.
    let mut found: Vec<RelationSet> = Vec::new();
    let mut frontier: Vec<RelationSet> = relations
        .iter()
        .map(|r| RelationSet::singleton(*r))
        .collect();
    found.extend(frontier.iter().copied());

    for _ in 1..cap {
        let mut next = Vec::new();
        for set in &frontier {
            for candidate in graph.neighbors_of_set(set).iter() {
                let mut grown = *set;
                grown.insert(candidate);
                next.push(grown);
            }
        }
        next.sort();
        next.dedup();
        // Only keep sets we have not seen yet.
        let fresh: Vec<RelationSet> = next.into_iter().filter(|s| !found.contains(s)).collect();
        if fresh.is_empty() {
            break;
        }
        found.extend(fresh.iter().copied());
        frontier = fresh;
    }

    let mut mirs: Vec<Mir> = found.into_iter().map(Mir::new).collect();
    mirs.sort_by_key(|m| (m.size(), m.relations.bits()));
    mirs.dedup();
    mirs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::EquiPredicate;
    use clash_common::{AttrId, AttrRef, QueryId, RelationId};

    fn attr(rel: u32, a: u32) -> AttrRef {
        AttrRef::new(RelationId::new(rel), AttrId::new(a))
    }

    fn rs(ids: &[u32]) -> RelationSet {
        ids.iter().map(|i| RelationId::new(*i)).collect()
    }

    fn linear(n: u32) -> JoinQuery {
        let relations: RelationSet = (0..n).map(RelationId::new).collect();
        let predicates = (0..n - 1)
            .map(|i| EquiPredicate::new(attr(i, 1), attr(i + 1, 0)))
            .collect();
        JoinQuery::new(QueryId::new(0), "linear", relations, predicates, None).unwrap()
    }

    fn clique(n: u32) -> JoinQuery {
        let relations: RelationSet = (0..n).map(RelationId::new).collect();
        let mut predicates = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                predicates.push(EquiPredicate::new(attr(i, j), attr(j, i)));
            }
        }
        JoinQuery::new(QueryId::new(0), "clique", relations, predicates, None).unwrap()
    }

    #[test]
    fn linear_query_has_consecutive_subsequences() {
        // Linear query over n relations has n(n+1)/2 connected subsets.
        let q = linear(4);
        let mirs = enumerate_mirs(&q, None);
        assert_eq!(mirs.len(), 4 * 5 / 2);
        assert!(mirs.contains(&Mir::new(rs(&[1, 2]))));
        assert!(mirs.contains(&Mir::new(rs(&[0, 1, 2, 3]))));
        assert!(
            !mirs.iter().any(|m| m.relations == rs(&[0, 2])),
            "non-adjacent set excluded"
        );
        assert!(!mirs.iter().any(|m| m.relations == rs(&[0, 3])));
    }

    #[test]
    fn clique_query_has_all_nonempty_subsets() {
        let q = clique(4);
        let mirs = enumerate_mirs(&q, None);
        assert_eq!(mirs.len(), 2usize.pow(4) - 1);
    }

    #[test]
    fn star_query_excludes_leaf_pairs() {
        // Star: center 0, leaves 1..=3. Connected subsets must contain the
        // center unless they are singletons.
        let relations = rs(&[0, 1, 2, 3]);
        let predicates = vec![
            EquiPredicate::new(attr(0, 1), attr(1, 0)),
            EquiPredicate::new(attr(0, 2), attr(2, 0)),
            EquiPredicate::new(attr(0, 3), attr(3, 0)),
        ];
        let q = JoinQuery::new(QueryId::new(0), "star", relations, predicates, None).unwrap();
        let mirs = enumerate_mirs(&q, None);
        // 4 singletons + subsets containing the center: choose any of the
        // 2^3 leaf combinations = 8, i.e. 8 + 3 = 11 total.
        assert_eq!(mirs.len(), 11);
        assert!(!mirs.iter().any(|m| m.relations == rs(&[1, 2])));
    }

    #[test]
    fn size_cap_limits_enumeration() {
        let q = clique(5);
        let mirs = enumerate_mirs(&q, Some(2));
        // 5 singletons + C(5,2) pairs (clique: all pairs connected).
        assert_eq!(mirs.len(), 5 + 10);
        assert!(mirs.iter().all(|m| m.size() <= 2));
    }

    #[test]
    fn base_relations_are_always_included_and_marked() {
        let q = linear(3);
        let mirs = enumerate_mirs(&q, None);
        let bases: Vec<&Mir> = mirs.iter().filter(|m| m.is_base()).collect();
        assert_eq!(bases.len(), 3);
        assert!(mirs.iter().filter(|m| !m.is_base()).all(|m| m.size() >= 2));
    }

    #[test]
    fn single_relation_query() {
        let relations = rs(&[5]);
        let q = JoinQuery::new(QueryId::new(0), "single", relations, vec![], None).unwrap();
        let mirs = enumerate_mirs(&q, None);
        assert_eq!(mirs.len(), 1);
        assert!(mirs[0].is_base());
    }

    #[test]
    fn enumeration_is_deterministic_and_sorted() {
        let q = linear(5);
        let a = enumerate_mirs(&q, None);
        let b = enumerate_mirs(&q, None);
        assert_eq!(a, b);
        for w in a.windows(2) {
            assert!(w[0].size() <= w[1].size());
        }
    }
}
