//! Typed diagnostics for static plan analysis.
//!
//! The `clash-analyzer` crate checks topology plans before they are
//! installed and reports its findings as [`Diagnostic`] values. The type
//! lives here (not in the analyzer) because [`crate::ClashError`] carries
//! rejected-plan diagnostics in its `InvalidPlan` variant and every crate
//! depends on `clash-common`.
//!
//! Codes are stable (`P001`, `P002`, ...): tests and operators match on
//! them, so a code is never reused for a different condition. The
//! reference table lives in DESIGN.md.

use crate::ids::{EdgeId, QueryId, StoreId};
use std::fmt;

/// How severe a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but executable (e.g. dead rule sets): the plan installs.
    Warning,
    /// The plan would compute wrong results, lose tuples or not terminate:
    /// `install_plan` rejects it.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One finding of the static plan analyzer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code (`P001`, ...). Never reused across conditions.
    pub code: &'static str,
    /// Whether the finding blocks installation.
    pub severity: Severity,
    /// Store the finding is anchored at, when one exists.
    pub store: Option<StoreId>,
    /// Incoming edge of the rule set involved, when one exists.
    pub edge: Option<EdgeId>,
    /// Query the finding concerns, when one exists.
    pub query: Option<QueryId>,
    /// Human-readable description of the condition.
    pub message: String,
}

impl Diagnostic {
    /// Creates an error-severity diagnostic with no context attached.
    pub fn error(code: &'static str, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: Severity::Error,
            store: None,
            edge: None,
            query: None,
            message: message.into(),
        }
    }

    /// Creates a warning-severity diagnostic with no context attached.
    pub fn warning(code: &'static str, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            ..Diagnostic::error(code, message)
        }
    }

    /// Attaches the store the finding is anchored at.
    pub fn at_store(mut self, store: StoreId) -> Self {
        self.store = Some(store);
        self
    }

    /// Attaches the incoming edge of the rule set involved.
    pub fn at_edge(mut self, edge: EdgeId) -> Self {
        self.edge = Some(edge);
        self
    }

    /// Attaches the query the finding concerns.
    pub fn for_query(mut self, query: QueryId) -> Self {
        self.query = Some(query);
        self
    }

    /// Whether this finding blocks installation.
    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.severity, self.code)?;
        if let Some(s) = self.store {
            write!(f, " {s}")?;
        }
        if let Some(e) = self.edge {
            write!(f, "/{e}")?;
        }
        if let Some(q) = self.query {
            write!(f, " ({q})")?;
        }
        write!(f, ": {}", self.message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_code_context_and_message() {
        let d = Diagnostic::error("P001", "dangling store")
            .at_store(StoreId::new(3))
            .at_edge(EdgeId::new(7));
        assert_eq!(d.to_string(), "error[P001] St3/e7: dangling store");
        assert!(d.is_error());
    }

    #[test]
    fn warning_is_not_an_error() {
        let d = Diagnostic::warning("P003", "orphan rule set").for_query(QueryId::new(2));
        assert!(!d.is_error());
        assert_eq!(d.to_string(), "warning[P003] (Q2): orphan rule set");
    }

    #[test]
    fn severity_orders_error_above_warning() {
        assert!(Severity::Error > Severity::Warning);
    }
}
