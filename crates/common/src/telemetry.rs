//! Runtime telemetry primitives: mergeable log-bucketed latency
//! histograms, fixed-capacity trace-event rings, and the Prometheus-style
//! exposition builder (see DESIGN.md, "The telemetry layer").
//!
//! Everything here is engineered for the ingest hot path:
//!
//! * [`LatencyHistogram::record`] is a bucket-index computation (one
//!   `leading_zeros`, two shifts) plus four plain counter updates — no
//!   allocation, no branching on the data, no floating point.
//! * [`TraceRing::record`] is one enabled-branch plus one ring-slot write;
//!   a full ring overwrites the oldest event instead of allocating.
//! * Both are *mergeable*: per-worker deltas combine at epoch barriers by
//!   bucket-wise addition, exactly like the runtime's other counters, so
//!   aggregated quantiles are loss-free (the merged histogram equals the
//!   histogram of the concatenated samples — property-tested).
//!
//! The histogram is HDR-style: values bucket by their power of two
//! (octave) with [`HIST_SUB_COUNT`] linear sub-buckets per octave, giving
//! a guaranteed relative error of at most [`LatencyHistogram::RELATIVE_ERROR`]
//! (= 1/[`HIST_SUB_COUNT`]) for any reported quantile, over the full
//! `u64` nanosecond range, in a fixed `HIST_BUCKETS`-slot array.

use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Sub-bucket resolution: `2^HIST_SUB_BITS` linear sub-buckets per octave.
pub const HIST_SUB_BITS: u32 = 4;

/// Linear sub-buckets per power of two (16 → ≤ 6.25% relative error).
pub const HIST_SUB_COUNT: usize = 1 << HIST_SUB_BITS;

/// Total bucket count covering the full `u64` nanosecond range.
pub const HIST_BUCKETS: usize = (64 - HIST_SUB_BITS as usize + 1) * HIST_SUB_COUNT;

/// Bucket index of a nanosecond value. Values below [`HIST_SUB_COUNT`]
/// map exactly (one bucket per value); larger values map by octave and
/// linear sub-bucket within the octave.
#[inline]
fn bucket_of(ns: u64) -> usize {
    if ns < HIST_SUB_COUNT as u64 {
        return ns as usize;
    }
    let msb = 63 - ns.leading_zeros();
    let shift = msb - HIST_SUB_BITS;
    let sub = ((ns >> shift) as usize) & (HIST_SUB_COUNT - 1);
    ((msb - HIST_SUB_BITS) as usize + 1) * HIST_SUB_COUNT + sub
}

/// Inclusive upper bound (ns) of the values mapping to `bucket`.
#[inline]
fn bucket_upper(bucket: usize) -> u64 {
    if bucket < HIST_SUB_COUNT {
        return bucket as u64;
    }
    let octave = bucket / HIST_SUB_COUNT - 1;
    let sub = (bucket % HIST_SUB_COUNT) as u64;
    ((HIST_SUB_COUNT as u64 + sub) << octave) + ((1u64 << octave) - 1)
}

/// A mergeable, log-bucketed latency histogram over nanosecond samples.
///
/// Fixed-size (no allocation after construction), `record` is
/// allocation-free, and `merge` is bucket-wise addition — the shape the
/// parallel runtime needs to ship per-worker deltas through epoch-barrier
/// acks. Quantiles are reported as the containing bucket's upper bound
/// (clamped to the recorded maximum), so a reported quantile is never
/// below the exact sample quantile and overshoots it by at most
/// [`Self::RELATIVE_ERROR`].
#[derive(Clone)]
pub struct LatencyHistogram {
    counts: [u64; HIST_BUCKETS],
    count: u64,
    sum_ns: f64,
    max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            counts: [0; HIST_BUCKETS],
            count: 0,
            sum_ns: 0.0,
            max_ns: 0,
        }
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.count)
            .field("mean_us", &self.mean_us())
            .field("p50_us", &self.quantile_us(0.50))
            .field("p99_us", &self.quantile_us(0.99))
            .field("max_us", &self.max_us())
            .finish()
    }
}

impl PartialEq for LatencyHistogram {
    fn eq(&self, other: &Self) -> bool {
        self.count == other.count
            && self.max_ns == other.max_ns
            && self.sum_ns == other.sum_ns
            && self.counts[..] == other.counts[..]
    }
}

impl LatencyHistogram {
    /// Worst-case relative quantile error: a reported quantile `r` and
    /// the exact sample quantile `x` satisfy `x <= r <= x * (1 + ERROR)`.
    pub const RELATIVE_ERROR: f64 = 1.0 / HIST_SUB_COUNT as f64;

    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one latency sample.
    #[inline]
    pub fn record(&mut self, latency: Duration) {
        self.record_ns(latency.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Records one sample in nanoseconds.
    #[inline]
    pub fn record_ns(&mut self, ns: u64) {
        self.counts[bucket_of(ns)] += 1;
        self.count += 1;
        self.sum_ns += ns as f64;
        if ns > self.max_ns {
            self.max_ns = ns;
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean latency in microseconds.
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns / self.count as f64 / 1e3
        }
    }

    /// Maximum recorded latency in microseconds (exact, not bucketed).
    pub fn max_us(&self) -> f64 {
        self.max_ns as f64 / 1e3
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) in microseconds: the upper bound
    /// of the bucket holding the sample of rank `ceil(q * count)`,
    /// clamped to the exact maximum.
    pub fn quantile_us(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (bucket, &n) in self.counts.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper(bucket).min(self.max_ns) as f64 / 1e3;
            }
        }
        self.max_us()
    }

    /// Merges another histogram into this one. The result is exactly the
    /// histogram that would have recorded both sample sets.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        if other.count == 0 {
            return;
        }
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Non-empty buckets as `(upper_bound_ns, count)` in ascending order
    /// (the exposition renders these as cumulative Prometheus buckets).
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(b, &n)| (bucket_upper(b), n))
    }
}

/// What a trace event records (see the event vocabulary in DESIGN.md).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum TraceEventKind {
    /// One input tuple entered the engine (`a` = raw relation id,
    /// `b` = results emitted inline, sequential engine only).
    Ingest,
    /// One root was routed to the worker shards (`a` = sequence number,
    /// `b` = raw relation id).
    Route,
    /// One probe ran (`a` = raw store id, `b` = matches found).
    Probe,
    /// One tuple was inserted into a store (`a` = raw store id).
    Insert,
    /// A window expiry pass ran (`a` = tuples removed).
    Expire,
    /// A collection barrier was processed (`a` = barrier token).
    Barrier,
    /// A plan install began quiescing producers.
    QuiesceBegin,
    /// Producers were quiesced and the drain completed.
    QuiesceEnd,
    /// A new plan was installed (`a` = realized install position,
    /// `b` = store count of the new plan).
    PlanInstall,
    /// The control-plane driver observed an epoch boundary (`a` = epoch).
    EpochTick,
    /// The adaptive controller evaluated an epoch (`a` = shared probe
    /// cost of the re-planned configuration ×1000, `b` = 1 when a
    /// reconfiguration was installed).
    ControllerDecision,
    /// A micro-batch buffer was flushed (`a` = buffered deliveries,
    /// `b` = buffer age in µs).
    Flush,
    /// Cold epochs of a store were frozen into columnar segments
    /// (`a` = raw store id, `b` = segments built by this pass).
    Compaction,
}

impl TraceEventKind {
    /// Stable event name (Chrome trace `name` field).
    pub fn name(self) -> &'static str {
        match self {
            TraceEventKind::Ingest => "ingest",
            TraceEventKind::Route => "route",
            TraceEventKind::Probe => "probe",
            TraceEventKind::Insert => "insert",
            TraceEventKind::Expire => "expire",
            TraceEventKind::Barrier => "barrier",
            TraceEventKind::QuiesceBegin => "quiesce_begin",
            TraceEventKind::QuiesceEnd => "quiesce_end",
            TraceEventKind::PlanInstall => "plan_install",
            TraceEventKind::EpochTick => "epoch_tick",
            TraceEventKind::ControllerDecision => "controller_decision",
            TraceEventKind::Flush => "flush",
            TraceEventKind::Compaction => "compaction",
        }
    }
}

/// One timestamped trace event. `Copy` and exactly 48 bytes, so a ring
/// write is a plain slot store.
#[derive(Debug, Clone, Copy)]
pub struct TraceEvent {
    /// What happened.
    pub kind: TraceEventKind,
    /// Thread lane: `0` = coordinator/control plane, `1 + i` = worker `i`.
    pub tid: u32,
    /// Microseconds since the process-wide trace clock started.
    pub ts_us: u64,
    /// Span duration in µs (`0` renders as an instant event).
    pub dur_us: u64,
    /// First payload word (meaning depends on `kind`).
    pub a: u64,
    /// Second payload word.
    pub b: u64,
}

/// Microseconds since the first telemetry clock read in this process.
/// All rings share this base, so events from different threads order
/// correctly in one merged trace.
pub fn trace_clock_us() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_micros() as u64
}

/// A fixed-capacity ring buffer of [`TraceEvent`]s owned by one thread.
///
/// Recording is one capacity branch plus one slot write; when the ring is
/// full the oldest event is overwritten (and counted in
/// [`Self::dropped`]), so tracing can stay on permanently without
/// unbounded growth. Capacity `0` disables the ring entirely — the
/// record calls reduce to the single branch.
#[derive(Debug)]
pub struct TraceRing {
    buf: Vec<TraceEvent>,
    capacity: usize,
    /// Next write position (wraps at `capacity`).
    head: usize,
    /// Events currently held (`<= capacity`).
    len: usize,
    dropped: u64,
    tid: u32,
}

impl TraceRing {
    /// A ring of `capacity` slots for thread lane `tid` (`0` disables).
    pub fn new(capacity: usize, tid: u32) -> Self {
        TraceRing {
            buf: Vec::with_capacity(capacity),
            capacity,
            head: 0,
            len: 0,
            dropped: 0,
            tid,
        }
    }

    /// Whether events are being recorded.
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Records one instant event.
    #[inline]
    pub fn record(&mut self, kind: TraceEventKind, a: u64, b: u64) {
        if self.capacity == 0 {
            return;
        }
        self.write(TraceEvent {
            kind,
            tid: self.tid,
            ts_us: trace_clock_us(),
            dur_us: 0,
            a,
            b,
        });
    }

    /// Records a span event that started at `started_us` (a prior
    /// [`trace_clock_us`] reading) and ends now.
    #[inline]
    pub fn record_span(&mut self, kind: TraceEventKind, started_us: u64, a: u64, b: u64) {
        if self.capacity == 0 {
            return;
        }
        let now = trace_clock_us();
        self.write(TraceEvent {
            kind,
            tid: self.tid,
            ts_us: started_us,
            dur_us: now.saturating_sub(started_us),
            a,
            b,
        });
    }

    #[inline]
    fn write(&mut self, event: TraceEvent) {
        if self.len < self.capacity {
            self.buf.push(event);
            self.len += 1;
        } else {
            self.buf[self.head] = event;
            self.dropped += 1;
        }
        self.head = (self.head + 1) % self.capacity;
    }

    /// Events overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Takes every buffered event in record order, leaving the ring empty
    /// (the drain point of the epoch-barrier ack path).
    pub fn drain(&mut self) -> Vec<TraceEvent> {
        if self.len == 0 {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.len);
        if self.len < self.capacity {
            out.extend_from_slice(&self.buf);
        } else {
            // Full ring: oldest event sits at `head`.
            out.extend_from_slice(&self.buf[self.head..]);
            out.extend_from_slice(&self.buf[..self.head]);
        }
        self.buf.clear();
        self.head = 0;
        self.len = 0;
        out
    }
}

/// Renders events as Chrome trace-event JSON (the JSON Object Format:
/// `{"traceEvents": [...]}`), loadable in `chrome://tracing` and Perfetto.
/// Span events (`dur_us > 0`) render as complete (`"ph": "X"`) events,
/// the rest as thread-scoped instants (`"ph": "i"`).
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(64 + events.len() * 96);
    out.push_str("{\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":\"");
        out.push_str(e.kind.name());
        out.push_str("\",\"cat\":\"clash\",\"pid\":1,\"tid\":");
        out.push_str(&e.tid.to_string());
        out.push_str(",\"ts\":");
        out.push_str(&e.ts_us.to_string());
        if e.dur_us > 0 {
            out.push_str(",\"ph\":\"X\",\"dur\":");
            out.push_str(&e.dur_us.to_string());
        } else {
            out.push_str(",\"ph\":\"i\",\"s\":\"t\"");
        }
        out.push_str(",\"args\":{\"a\":");
        out.push_str(&e.a.to_string());
        out.push_str(",\"b\":");
        out.push_str(&e.b.to_string());
        out.push_str("}}");
    }
    out.push_str("]}");
    out
}

/// Incremental builder for a Prometheus text-format exposition page.
///
/// Keeps the runtime code free of format minutiae: callers declare a
/// metric once (`# HELP` / `# TYPE` comments) and then append labeled
/// samples. [`Self::histogram`] renders a [`LatencyHistogram`] as
/// cumulative `_bucket{le="..."}` samples (µs) plus `_sum` and `_count`.
#[derive(Debug, Default)]
pub struct Exposition {
    out: String,
}

impl Exposition {
    /// An empty page.
    pub fn new() -> Self {
        Exposition::default()
    }

    /// Declares a metric (`# HELP` + `# TYPE` lines).
    pub fn declare(&mut self, name: &str, help: &str, kind: &str) {
        self.out.push_str("# HELP ");
        self.out.push_str(name);
        self.out.push(' ');
        self.out.push_str(help);
        self.out.push_str("\n# TYPE ");
        self.out.push_str(name);
        self.out.push(' ');
        self.out.push_str(kind);
        self.out.push('\n');
    }

    /// Appends one sample line: `name{labels} value`.
    pub fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.out.push_str(name);
        self.push_labels(labels, None);
        self.out.push(' ');
        self.push_value(value);
        self.out.push('\n');
    }

    /// Appends a histogram: cumulative `_bucket` lines over the non-empty
    /// buckets (upper bounds in µs), a `+Inf` bucket, `_sum` (µs) and
    /// `_count`.
    pub fn histogram(&mut self, name: &str, labels: &[(&str, &str)], hist: &LatencyHistogram) {
        let mut cumulative = 0u64;
        for (upper_ns, count) in hist.nonzero_buckets() {
            cumulative += count;
            let le = format!("{}", upper_ns as f64 / 1e3);
            self.out.push_str(name);
            self.out.push_str("_bucket");
            self.push_labels(labels, Some(("le", &le)));
            self.out.push(' ');
            self.out.push_str(&cumulative.to_string());
            self.out.push('\n');
        }
        self.out.push_str(name);
        self.out.push_str("_bucket");
        self.push_labels(labels, Some(("le", "+Inf")));
        self.out.push(' ');
        self.out.push_str(&hist.count().to_string());
        self.out.push('\n');
        self.out.push_str(name);
        self.out.push_str("_sum");
        self.push_labels(labels, None);
        self.out.push(' ');
        self.push_value(hist.mean_us() * hist.count() as f64);
        self.out.push('\n');
        self.out.push_str(name);
        self.out.push_str("_count");
        self.push_labels(labels, None);
        self.out.push(' ');
        self.out.push_str(&hist.count().to_string());
        self.out.push('\n');
    }

    /// Appends quantile samples (`quantile="0.5" | "0.9" | "0.99" |
    /// "0.999"`) plus `_max` for one histogram — the summary surface the
    /// acceptance criteria require per query and per shard.
    pub fn quantiles(&mut self, name: &str, labels: &[(&str, &str)], hist: &LatencyHistogram) {
        for (q, label) in [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99"), (0.999, "0.999")] {
            self.out.push_str(name);
            self.push_labels(labels, Some(("quantile", label)));
            self.out.push(' ');
            self.push_value(hist.quantile_us(q));
            self.out.push('\n');
        }
        self.out.push_str(name);
        self.out.push_str("_max");
        self.push_labels(labels, None);
        self.out.push(' ');
        self.push_value(hist.max_us());
        self.out.push('\n');
    }

    /// The finished page.
    pub fn finish(self) -> String {
        self.out
    }

    fn push_labels(&mut self, labels: &[(&str, &str)], extra: Option<(&str, &str)>) {
        if labels.is_empty() && extra.is_none() {
            return;
        }
        self.out.push('{');
        let mut first = true;
        for (k, v) in labels.iter().copied().chain(extra) {
            if !first {
                self.out.push(',');
            }
            first = false;
            self.out.push_str(k);
            self.out.push_str("=\"");
            self.out.push_str(v);
            self.out.push('"');
        }
        self.out.push('}');
    }

    fn push_value(&mut self, value: f64) {
        if value == value.trunc() && value.abs() < 1e15 {
            self.out.push_str(&format!("{}", value as i64));
        } else {
            self.out.push_str(&format!("{value}"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic xorshift so the distribution tests need no external
    /// RNG crate.
    struct XorShift(u64);

    impl XorShift {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
    }

    fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    #[test]
    fn buckets_are_contiguous_and_monotonic() {
        let mut prev_bucket = 0usize;
        for ns in 0..100_000u64 {
            let b = bucket_of(ns);
            assert!(
                b == prev_bucket || b == prev_bucket + 1,
                "bucket index jumped from {prev_bucket} to {b} at {ns}"
            );
            assert!(ns <= bucket_upper(b), "value {ns} above its bucket bound");
            prev_bucket = b;
        }
        // Extremes stay in range.
        assert!(bucket_of(u64::MAX) < HIST_BUCKETS);
        assert_eq!(bucket_of(0), 0);
    }

    #[test]
    fn bucket_upper_bound_respects_relative_error() {
        let mut rng = XorShift(0x9E3779B97F4A7C15);
        for _ in 0..10_000 {
            let ns = rng.next() >> (rng.next() % 48);
            let upper = bucket_upper(bucket_of(ns));
            assert!(upper >= ns);
            let err = (upper - ns) as f64;
            assert!(
                err <= ns as f64 * LatencyHistogram::RELATIVE_ERROR + 1.0,
                "bucket error {err} above bound for {ns}"
            );
        }
    }

    #[test]
    fn quantiles_track_exact_values_within_error_bound() {
        let mut rng = XorShift(42);
        let mut hist = LatencyHistogram::new();
        let mut samples = Vec::new();
        for _ in 0..20_000 {
            // Log-uniform over ~6 decades, the shape of real latencies.
            let ns = 100 + (rng.next() % 1_000) * 10u64.pow((rng.next() % 6) as u32);
            hist.record_ns(ns);
            samples.push(ns);
        }
        samples.sort_unstable();
        for q in [0.5, 0.9, 0.99, 0.999] {
            let exact = exact_quantile(&samples, q) as f64 / 1e3;
            let reported = hist.quantile_us(q);
            assert!(
                reported >= exact - 1e-9,
                "q{q}: reported {reported} below exact {exact}"
            );
            assert!(
                reported <= exact * (1.0 + LatencyHistogram::RELATIVE_ERROR) + 1e-3,
                "q{q}: reported {reported} beyond error bound of exact {exact}"
            );
        }
        assert_eq!(hist.max_us(), *samples.last().unwrap() as f64 / 1e3);
    }

    #[test]
    fn merge_equals_histogram_of_concatenated_samples() {
        let mut rng = XorShift(7);
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut both = LatencyHistogram::new();
        for i in 0..5_000 {
            let ns = rng.next() % 10_000_000;
            if i % 3 == 0 {
                a.record_ns(ns);
            } else {
                b.record_ns(ns);
            }
            both.record_ns(ns);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged, both, "merge(a, b) != histogram of a ++ b");
        for q in [0.5, 0.9, 0.99, 0.999] {
            assert_eq!(merged.quantile_us(q), both.quantile_us(q));
        }
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let hist = LatencyHistogram::new();
        assert!(hist.is_empty());
        assert_eq!(hist.quantile_us(0.99), 0.0);
        assert_eq!(hist.mean_us(), 0.0);
        assert_eq!(hist.max_us(), 0.0);
    }

    #[test]
    fn ring_keeps_newest_events_and_counts_drops() {
        let mut ring = TraceRing::new(4, 3);
        for i in 0..6u64 {
            ring.record(TraceEventKind::Probe, i, 0);
        }
        assert_eq!(ring.dropped(), 2);
        let events = ring.drain();
        assert_eq!(events.len(), 4);
        let ids: Vec<u64> = events.iter().map(|e| e.a).collect();
        assert_eq!(ids, vec![2, 3, 4, 5], "oldest events overwritten first");
        assert!(events.iter().all(|e| e.tid == 3));
        // Drained ring starts over.
        ring.record(TraceEventKind::Insert, 9, 0);
        assert_eq!(ring.drain().len(), 1);
    }

    #[test]
    fn disabled_ring_records_nothing() {
        let mut ring = TraceRing::new(0, 0);
        ring.record(TraceEventKind::Probe, 1, 2);
        ring.record_span(TraceEventKind::Ingest, 0, 1, 2);
        assert!(!ring.enabled());
        assert!(ring.drain().is_empty());
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn chrome_trace_json_is_balanced_and_complete() {
        let mut ring = TraceRing::new(16, 1);
        ring.record(TraceEventKind::Probe, 7, 3);
        let started = trace_clock_us();
        ring.record_span(TraceEventKind::Ingest, started, 1, 0);
        let json = chrome_trace_json(&ring.drain());
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"name\":\"probe\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces"
        );
    }

    #[test]
    fn exposition_renders_prometheus_text() {
        let mut hist = LatencyHistogram::new();
        hist.record_ns(1_500);
        hist.record_ns(2_000_000);
        let mut page = Exposition::new();
        page.declare("clash_test_total", "A counter.", "counter");
        page.sample("clash_test_total", &[("query", "0")], 12.0);
        page.declare("clash_test_latency_us", "A histogram.", "histogram");
        page.histogram("clash_test_latency_us", &[("query", "0")], &hist);
        page.quantiles("clash_test_latency_us", &[("query", "0")], &hist);
        let text = page.finish();
        assert!(text.contains("# TYPE clash_test_total counter"));
        assert!(text.contains("clash_test_total{query=\"0\"} 12\n"));
        assert!(text.contains("clash_test_latency_us_bucket{query=\"0\",le=\"+Inf\"} 2\n"));
        assert!(text.contains("clash_test_latency_us_count{query=\"0\"} 2\n"));
        assert!(text.contains("quantile=\"0.999\""));
        // Every non-comment line is `name{labels} value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (name, value) = line.rsplit_once(' ').unwrap_or(("", ""));
            assert!(!name.is_empty() && value.parse::<f64>().is_ok(), "{line}");
        }
    }
}
