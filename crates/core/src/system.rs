//! The [`ClashSystem`] facade.

use clash_catalog::{Catalog, Statistics};
use clash_common::{
    ClashError, Epoch, QueryId, RelationId, Result, Timestamp, Tuple, TupleBuilder, Value, Window,
};
use clash_optimizer::{OptimizationReport, Planner, PlannerConfig, Strategy};
use clash_query::{parse_query, JoinQuery, QueryBuilder};
use clash_runtime::{
    AdaptiveConfig, AdaptiveController, EngineConfig, LocalEngine, MetricsSnapshot, ParallelEngine,
    SourceHandle,
};
use std::sync::mpsc::Receiver;
use std::sync::{Arc, Mutex, PoisonError};

/// Which execution runtime a deployment uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RuntimeMode {
    /// The deterministic single-threaded [`LocalEngine`].
    #[default]
    Local,
    /// The sharded [`ParallelEngine`] with the given number of worker
    /// threads; `0` spawns one worker per partition of the widest store
    /// (the catalog's `parallelism`).
    Parallel(usize),
}

/// System-wide configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct SystemConfig {
    /// Engine configuration (epoch length, expiry cadence, result
    /// collection).
    pub engine: EngineConfig,
    /// Planner configuration (plan-space limits, solver limits).
    pub planner: PlannerConfig,
    /// Keep emitted results in memory so callers can inspect them.
    pub collect_results: bool,
    /// Execution runtime for deployments.
    pub runtime: RuntimeMode,
}

/// A deployed engine of either runtime, dispatching the operations the
/// system needs. Boxed: the engines are large and the handle lives inside
/// every `ClashSystem`.
enum EngineHandle {
    Local(Box<LocalEngine>),
    Parallel(Box<ParallelEngine>),
}

impl EngineHandle {
    fn epoch_config(&self) -> clash_common::EpochConfig {
        match self {
            EngineHandle::Local(e) => e.epoch_config(),
            EngineHandle::Parallel(e) => e.epoch_config(),
        }
    }

    fn ingest(&mut self, relation: RelationId, tuple: Tuple) -> Result<u64> {
        match self {
            EngineHandle::Local(e) => e.ingest(relation, tuple),
            EngineHandle::Parallel(e) => e.ingest(relation, tuple),
        }
    }

    fn snapshot(&mut self) -> MetricsSnapshot {
        match self {
            EngineHandle::Local(e) => e.snapshot(),
            EngineHandle::Parallel(e) => e.snapshot(),
        }
    }

    fn results(&self) -> Vec<(QueryId, Tuple)> {
        match self {
            EngineHandle::Local(e) => e.results().to_vec(),
            EngineHandle::Parallel(e) => e.results(),
        }
    }

    fn telemetry_snapshot(&mut self) -> String {
        match self {
            EngineHandle::Local(e) => e.telemetry_snapshot(),
            EngineHandle::Parallel(e) => e.telemetry_snapshot(),
        }
    }

    fn trace_json(&mut self) -> String {
        match self {
            EngineHandle::Local(e) => e.trace_json(),
            EngineHandle::Parallel(e) => e.trace_json(),
        }
    }
}

/// Locks the shared controller, recovering from poisoning (a panicked
/// epoch-driver tick must not take query registration down with it).
fn lock_controller(
    controller: &Arc<Mutex<AdaptiveController>>,
) -> std::sync::MutexGuard<'_, AdaptiveController> {
    controller.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The CLASH system: catalog + statistics + optimizer + runtime + adaptive
/// controller behind one API.
pub struct ClashSystem {
    config: SystemConfig,
    catalog: Catalog,
    stats: Statistics,
    queries: Vec<JoinQuery>,
    next_query_id: u32,
    engine: Option<EngineHandle>,
    /// The adaptive controller, shared with the parallel runtime's
    /// control-plane epoch driver (which fires it off the stream clock,
    /// so source-fed deployments re-optimize without a single
    /// coordinator-thread ingest). On the local runtime the ingest path
    /// drives it, as before.
    controller: Option<Arc<Mutex<AdaptiveController>>>,
    strategy: Strategy,
    last_report: Option<OptimizationReport>,
    last_epoch_seen: Epoch,
}

impl std::fmt::Debug for ClashSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClashSystem")
            .field("relations", &self.catalog.len())
            .field("queries", &self.queries.len())
            .field("deployed", &self.engine.is_some())
            .finish()
    }
}

impl ClashSystem {
    /// Creates an empty system.
    pub fn new(config: SystemConfig) -> Self {
        ClashSystem {
            config,
            catalog: Catalog::new(),
            stats: Statistics::new(),
            queries: Vec::new(),
            next_query_id: 0,
            engine: None,
            controller: None,
            strategy: Strategy::GlobalIlp,
            last_report: None,
            last_epoch_seen: Epoch::ZERO,
        }
    }

    /// Registers a streamed input relation.
    pub fn register_relation(
        &mut self,
        name: &str,
        attributes: impl IntoIterator<Item = impl Into<String>>,
        window: Window,
        parallelism: usize,
    ) -> Result<RelationId> {
        self.catalog.register(name, attributes, window, parallelism)
    }

    /// Sets the assumed arrival rate of a relation (prior statistics used
    /// until sampled statistics are available).
    pub fn set_rate(&mut self, relation: &str, rate: f64) -> Result<()> {
        let id = self
            .catalog
            .relation_id(relation)
            .ok_or_else(|| ClashError::unknown(format!("relation '{relation}'")))?;
        self.stats.set_rate(id, rate);
        Ok(())
    }

    /// Sets the assumed selectivity of an equi-join predicate.
    pub fn set_selectivity(
        &mut self,
        left: (&str, &str),
        right: (&str, &str),
        selectivity: f64,
    ) -> Result<()> {
        let l = self.catalog.attr(left.0, left.1)?;
        let r = self.catalog.attr(right.0, right.1)?;
        self.stats.set_selectivity(l, r, selectivity);
        Ok(())
    }

    /// Replaces the whole statistics prior.
    pub fn set_statistics(&mut self, stats: Statistics) {
        self.stats = stats;
    }

    /// Registers a continuous query in the paper's notation
    /// (`"R(a), S(a,b), T(b)"`). Returns its id.
    pub fn register_query(&mut self, name: &str, definition: &str) -> Result<QueryId> {
        let id = QueryId::new(self.next_query_id);
        let q = parse_query(&self.catalog, id, name, definition)?;
        self.next_query_id += 1;
        self.queries.push(q.clone());
        if let Some(controller) = &self.controller {
            lock_controller(controller).add_query(q);
        }
        Ok(id)
    }

    /// Registers a query built programmatically (for schemas whose joined
    /// columns have different names, e.g. TPC-H).
    pub fn register_query_with<F>(&mut self, name: &str, build: F) -> Result<QueryId>
    where
        F: FnOnce(QueryBuilder<'_>) -> Result<QueryBuilder<'_>>,
    {
        let id = QueryId::new(self.next_query_id);
        let builder = QueryBuilder::new(id, name, &self.catalog);
        let q = build(builder)?.build()?;
        self.next_query_id += 1;
        self.queries.push(q.clone());
        if let Some(controller) = &self.controller {
            lock_controller(controller).add_query(q);
        }
        Ok(id)
    }

    /// Registers an already-constructed query (e.g. from `clash-datagen`).
    pub fn register_prepared_query(&mut self, query: JoinQuery) -> Result<QueryId> {
        let id = query.id;
        self.next_query_id = self.next_query_id.max(id.0 + 1);
        self.queries.retain(|q| q.id != id);
        self.queries.push(query.clone());
        if let Some(controller) = &self.controller {
            lock_controller(controller).add_query(query);
        }
        Ok(id)
    }

    /// Removes a continuous query. Stores only it used are dropped at the
    /// next re-optimization (reference counting, Section VI-B).
    pub fn remove_query(&mut self, id: QueryId) {
        self.queries.retain(|q| q.id != id);
        if let Some(controller) = &self.controller {
            lock_controller(controller).remove_query(id);
        }
    }

    /// The registered queries.
    pub fn queries(&self) -> &[JoinQuery] {
        &self.queries
    }

    /// The catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Optimizes the current workload without deploying it (explain mode).
    pub fn explain(&self, strategy: Strategy) -> Result<OptimizationReport> {
        let planner = Planner::new(&self.catalog, &self.stats, self.config.planner);
        planner.plan(&self.queries, strategy)
    }

    /// Optimizes and deploys the current workload with the given strategy.
    pub fn deploy(&mut self, strategy: Strategy) -> Result<&OptimizationReport> {
        if self.queries.is_empty() {
            return Err(ClashError::Optimization("no queries registered".into()));
        }
        self.strategy = strategy;
        let adaptive_config = AdaptiveConfig {
            strategy,
            planner: self.config.planner,
            enabled: true,
        };
        let (controller, plan) = AdaptiveController::new(
            self.catalog.clone(),
            self.queries.clone(),
            self.stats.clone(),
            adaptive_config,
        )?;
        let planner = Planner::new(&self.catalog, &self.stats, self.config.planner);
        let report = planner.plan(&self.queries, strategy)?;
        let mut engine_config = self.config.engine;
        engine_config.collect_results = self.config.collect_results;
        let controller = Arc::new(Mutex::new(controller));
        self.engine = Some(match self.config.runtime {
            RuntimeMode::Local => EngineHandle::Local(Box::new(LocalEngine::new(
                self.catalog.clone(),
                plan,
                engine_config,
            ))),
            RuntimeMode::Parallel(workers) => {
                let mut engine =
                    ParallelEngine::new(self.catalog.clone(), plan, engine_config, workers);
                // Control-plane adaptivity: a background epoch driver
                // watches the stream clock (advanced by coordinator
                // ingests and source pushes alike) and fires the shared
                // controller at every boundary — `open_source()`
                // workloads get Fig. 8-style reconfiguration without a
                // single coordinator-thread ingest.
                engine.start_epoch_driver(controller.clone());
                EngineHandle::Parallel(Box::new(engine))
            }
        });
        self.controller = Some(controller);
        self.last_report = Some(report);
        Ok(self.last_report.as_ref().expect("just set"))
    }

    /// The report of the last deployment / explain.
    pub fn last_report(&self) -> Option<&OptimizationReport> {
        self.last_report.as_ref()
    }

    /// Builds a tuple for a registered relation from attribute/value pairs.
    pub fn tuple(&self, relation: &str, ts_millis: u64, values: &[(&str, Value)]) -> Result<Tuple> {
        let meta = self.catalog.relation_by_name(relation)?;
        let mut b = TupleBuilder::new(&meta.schema, Timestamp::from_millis(ts_millis));
        for (attr, v) in values {
            b = b.set(attr, v.clone());
        }
        Ok(b.build())
    }

    /// Ingests a tuple into the deployed topology. Returns the number of
    /// join results this tuple completed. Advancing stream time across an
    /// epoch boundary triggers the adaptive controller.
    pub fn ingest(&mut self, relation: &str, tuple: Tuple) -> Result<u64> {
        let relation_id = self
            .catalog
            .relation_id(relation)
            .ok_or_else(|| ClashError::unknown(format!("relation '{relation}'")))?;
        self.ingest_by_id(relation_id, tuple)
    }

    /// Ingests a tuple by relation id (hot path for generators).
    pub fn ingest_by_id(&mut self, relation: RelationId, tuple: Tuple) -> Result<u64> {
        let engine = self
            .engine
            .as_mut()
            .ok_or_else(|| ClashError::Runtime("system not deployed".into()))?;
        let epoch = engine.epoch_config().epoch_of(tuple.ts);
        let produced = engine.ingest(relation, tuple)?;
        if epoch > self.last_epoch_seen {
            self.last_epoch_seen = epoch;
            // The local runtime is driven from the ingest path, as
            // before. The parallel runtime's controller runs off the
            // control-plane epoch driver instead (started at deploy), so
            // coordinator ingests and source pushes share one cadence.
            if let (Some(controller), EngineHandle::Local(e)) = (&self.controller, engine) {
                lock_controller(controller).on_epoch(e.as_mut(), epoch)?;
            }
        }
        Ok(produced)
    }

    /// Metrics snapshot of the deployed engine. For the parallel runtime
    /// this runs a drain barrier first, so the snapshot covers everything
    /// ingested so far.
    pub fn snapshot(&mut self) -> Result<MetricsSnapshot> {
        self.engine
            .as_mut()
            .map(|e| e.snapshot())
            .ok_or_else(|| ClashError::Runtime("system not deployed".into()))
    }

    /// Collected results (requires `collect_results` in the config). With
    /// the parallel runtime this reflects the state as of the last barrier
    /// (call [`Self::snapshot`] first to drain).
    pub fn results(&self) -> Vec<(QueryId, Tuple)> {
        self.engine
            .as_ref()
            .map(|e| e.results())
            .unwrap_or_default()
    }

    /// Renders the deployed engine's telemetry page (Prometheus-style
    /// text): engine counters, per-query and (on the parallel runtime)
    /// per-shard latency quantiles, per-store gauges, arena counters —
    /// plus the system-level reconfiguration count. Runs a barrier first
    /// on the parallel runtime, so the page covers everything ingested.
    pub fn telemetry_snapshot(&mut self) -> Result<String> {
        let engine = self
            .engine
            .as_mut()
            .ok_or_else(|| ClashError::Runtime("system not deployed".into()))?;
        let mut page = engine.telemetry_snapshot();
        page.push_str(
            "# HELP clash_reconfigurations_total Reconfigurations installed \
             by the adaptive controller.\n# TYPE clash_reconfigurations_total \
             counter\n",
        );
        page.push_str(&format!(
            "clash_reconfigurations_total {}\n",
            self.controller
                .as_ref()
                .map(|c| lock_controller(c).reconfigurations)
                .unwrap_or(0)
        ));
        page.push_str(
            "# HELP clash_candidate_rejections_total Candidate plans the \
             static analyzer rejected at install time; the live plan kept \
             running.\n# TYPE clash_candidate_rejections_total counter\n",
        );
        page.push_str(&format!(
            "clash_candidate_rejections_total {}\n",
            self.controller
                .as_ref()
                .map(|c| lock_controller(c).rejected_candidates)
                .unwrap_or(0)
        ));
        Ok(page)
    }

    /// Drains the deployed engine's trace-event rings as Chrome
    /// trace-event JSON (load in `chrome://tracing` or Perfetto). Empty
    /// `traceEvents` when tracing is disabled
    /// (`EngineConfig::trace_capacity == 0`).
    pub fn trace_json(&mut self) -> Result<String> {
        self.engine
            .as_mut()
            .map(|e| e.trace_json())
            .ok_or_else(|| ClashError::Runtime("system not deployed".into()))
    }

    /// Number of reconfigurations the adaptive controller has installed.
    pub fn reconfigurations(&self) -> usize {
        self.controller
            .as_ref()
            .map(|c| lock_controller(c).reconfigurations)
            .unwrap_or(0)
    }

    /// Number of candidate plans the static analyzer rejected at install
    /// time (the controller dropped them and kept the live plan).
    pub fn rejected_candidates(&self) -> usize {
        self.controller
            .as_ref()
            .map(|c| lock_controller(c).rejected_candidates)
            .unwrap_or(0)
    }

    /// The error that stopped the parallel runtime's control-plane epoch
    /// driver, if any. `None` on the local runtime (the ingest path
    /// propagates controller errors directly) and while the driver is
    /// healthy. When this is `Some`, adaptivity has stopped: the stream
    /// keeps flowing but no further reconfigurations will be installed —
    /// check it when [`Self::reconfigurations`] stays flat unexpectedly.
    pub fn adaptive_error(&self) -> Option<ClashError> {
        match self.engine.as_ref() {
            Some(EngineHandle::Parallel(e)) => e.epoch_driver_error(),
            _ => None,
        }
    }

    /// Opens a concurrent ingestion source on the deployed parallel
    /// runtime: the returned handle can be moved to a producer thread and
    /// pushed independently of this system handle and of every other
    /// source (see `clash_runtime::ingest`). Results stream to
    /// subscribers as they are produced; metrics and collected results
    /// aggregate at the next barrier ([`Self::snapshot`]).
    ///
    /// Fails when the system is not deployed or runs the single-threaded
    /// local runtime (which has no concurrent ingest path). Adaptive
    /// deployments work out of the box: the control-plane epoch driver
    /// fires the controller off the stream clock the pushes advance, and
    /// controller-triggered plan installs quiesce producers (racing
    /// pushes block briefly at the install gate and then route against
    /// the new plan — none is dropped).
    pub fn open_source(&mut self) -> Result<SourceHandle> {
        match self.engine.as_mut() {
            Some(EngineHandle::Parallel(e)) => Ok(e.open_source()),
            Some(EngineHandle::Local(_)) => Err(ClashError::Runtime(
                "multi-source ingestion requires RuntimeMode::Parallel".into(),
            )),
            None => Err(ClashError::Runtime("system not deployed".into())),
        }
    }

    /// Subscribes to the stream of emitted join results. On the parallel
    /// runtime results arrive on the returned channel as the workers
    /// produce them — between barriers, not only at epoch ends; on the
    /// local runtime they arrive synchronously during `ingest`. The
    /// channel disconnects when the engine shuts down.
    pub fn subscribe(&mut self) -> Result<Receiver<(QueryId, Tuple)>> {
        match self.engine.as_mut() {
            Some(EngineHandle::Parallel(e)) => Ok(e.subscribe()),
            Some(EngineHandle::Local(e)) => {
                let (tx, rx) = std::sync::mpsc::channel();
                e.set_sink(Box::new(move |query, tuple| {
                    let _ = tx.send((query, tuple.clone()));
                }));
                Ok(rx)
            }
            None => Err(ClashError::Runtime("system not deployed".into())),
        }
    }

    /// Direct access to the local engine (experiment drivers); `None` when
    /// deployed on the parallel runtime.
    pub fn engine_mut(&mut self) -> Option<&mut LocalEngine> {
        match self.engine.as_mut() {
            Some(EngineHandle::Local(e)) => Some(e),
            _ => None,
        }
    }

    /// Direct access to the parallel engine; `None` when deployed on the
    /// local runtime.
    pub fn parallel_engine_mut(&mut self) -> Option<&mut ParallelEngine> {
        match self.engine.as_mut() {
            Some(EngineHandle::Parallel(e)) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn system_with_rst() -> ClashSystem {
        let mut clash = ClashSystem::new(SystemConfig {
            collect_results: true,
            ..SystemConfig::default()
        });
        clash
            .register_relation("R", ["a"], Window::secs(3600), 1)
            .unwrap();
        clash
            .register_relation("S", ["a", "b"], Window::secs(3600), 1)
            .unwrap();
        clash
            .register_relation("T", ["b"], Window::secs(3600), 1)
            .unwrap();
        clash.set_rate("R", 100.0).unwrap();
        clash.set_rate("S", 100.0).unwrap();
        clash.set_rate("T", 100.0).unwrap();
        clash.set_selectivity(("R", "a"), ("S", "a"), 0.01).unwrap();
        clash.set_selectivity(("S", "b"), ("T", "b"), 0.01).unwrap();
        clash.register_query("q1", "R(a), S(a,b), T(b)").unwrap();
        clash
    }

    #[test]
    fn end_to_end_single_query() {
        let mut clash = system_with_rst();
        clash.deploy(Strategy::GlobalIlp).unwrap();
        let r = clash.tuple("R", 10, &[("a", 1.into())]).unwrap();
        let s = clash
            .tuple("S", 20, &[("a", 1.into()), ("b", 7.into())])
            .unwrap();
        let t = clash.tuple("T", 30, &[("b", 7.into())]).unwrap();
        assert_eq!(clash.ingest("R", r).unwrap(), 0);
        assert_eq!(clash.ingest("S", s).unwrap(), 0);
        assert_eq!(clash.ingest("T", t).unwrap(), 1);
        let snap = clash.snapshot().unwrap();
        assert_eq!(snap.total_results(), 1);
        assert_eq!(clash.results().len(), 1);
        assert!(clash.last_report().is_some());
    }

    #[test]
    fn ingest_before_deploy_fails() {
        let mut clash = system_with_rst();
        let r = clash.tuple("R", 10, &[("a", 1.into())]).unwrap();
        assert!(clash.ingest("R", r).is_err());
        assert!(clash.snapshot().is_err());
    }

    #[test]
    fn deploy_without_queries_fails() {
        let mut clash = ClashSystem::new(SystemConfig::default());
        clash
            .register_relation("R", ["a"], Window::secs(1), 1)
            .unwrap();
        assert!(clash.deploy(Strategy::Shared).is_err());
    }

    #[test]
    fn explain_reports_costs_without_deploying() {
        let clash = system_with_rst();
        let report = clash.explain(Strategy::GlobalIlp).unwrap();
        assert!(report.shared_cost > 0.0);
        assert!(report.model_stats.is_some());
    }

    #[test]
    fn query_registration_and_removal() {
        let mut clash = system_with_rst();
        let q2 = clash.register_query("q2", "S(b), T(b)").unwrap();
        assert_eq!(clash.queries().len(), 2);
        clash.deploy(Strategy::Shared).unwrap();
        clash.remove_query(q2);
        assert_eq!(clash.queries().len(), 1);
        // Unknown attribute is rejected.
        assert!(clash.register_query("bad", "R(zzz), S(zzz)").is_err());
    }

    #[test]
    fn builder_registration_for_differently_named_columns() {
        let mut clash = ClashSystem::new(SystemConfig::default());
        clash
            .register_relation("orders", ["orderkey", "custkey"], Window::secs(60), 1)
            .unwrap();
        clash
            .register_relation("lineitem", ["orderkey", "partkey"], Window::secs(60), 1)
            .unwrap();
        let id = clash
            .register_query_with("q", |b| {
                b.join("orders", "orderkey", "lineitem", "orderkey")
            })
            .unwrap();
        assert_eq!(clash.queries()[0].id, id);
        clash.deploy(Strategy::GlobalIlp).unwrap();
        assert!(clash.snapshot().unwrap().total_results() == 0);
    }

    #[test]
    fn parallel_runtime_matches_local_results() {
        let deploy_and_run = |runtime: RuntimeMode| -> u64 {
            let mut clash = ClashSystem::new(SystemConfig {
                collect_results: true,
                runtime,
                ..SystemConfig::default()
            });
            clash
                .register_relation("R", ["a"], Window::secs(3600), 2)
                .unwrap();
            clash
                .register_relation("S", ["a", "b"], Window::secs(3600), 2)
                .unwrap();
            clash
                .register_relation("T", ["b"], Window::secs(3600), 2)
                .unwrap();
            clash.register_query("q1", "R(a), S(a,b), T(b)").unwrap();
            clash.deploy(Strategy::GlobalIlp).unwrap();
            for i in 0..200u64 {
                let ts = i * 3;
                let a = (i % 10) as i64;
                let b = (i % 7) as i64;
                let r = clash.tuple("R", ts, &[("a", a.into())]).unwrap();
                let s = clash
                    .tuple("S", ts + 1, &[("a", a.into()), ("b", b.into())])
                    .unwrap();
                let t = clash.tuple("T", ts + 2, &[("b", b.into())]).unwrap();
                clash.ingest("R", r).unwrap();
                clash.ingest("S", s).unwrap();
                clash.ingest("T", t).unwrap();
            }
            clash.snapshot().unwrap().total_results()
        };
        let local = deploy_and_run(RuntimeMode::Local);
        assert!(local > 0);
        for workers in [1usize, 2, 4] {
            assert_eq!(
                deploy_and_run(RuntimeMode::Parallel(workers)),
                local,
                "{workers} workers"
            );
        }
    }

    #[test]
    fn epoch_advancement_drives_adaptive_controller() {
        let mut clash = system_with_rst();
        clash.deploy(Strategy::GlobalIlp).unwrap();
        // Stream several seconds of data so multiple epoch boundaries pass.
        for i in 0..5_000u64 {
            let ts = i * 2;
            let r = clash
                .tuple("R", ts, &[("a", ((i % 50) as i64).into())])
                .unwrap();
            clash.ingest("R", r).unwrap();
            let s = clash
                .tuple(
                    "S",
                    ts + 1,
                    &[
                        ("a", ((i % 50) as i64).into()),
                        ("b", ((i % 20) as i64).into()),
                    ],
                )
                .unwrap();
            clash.ingest("S", s).unwrap();
        }
        // The controller ran (whether it re-planned depends on how much the
        // sampled statistics deviate from the prior, but the pipeline must
        // not error and results must be produced).
        assert!(clash.snapshot().unwrap().tuples_ingested == 10_000);
    }
}
