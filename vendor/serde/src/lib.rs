//! Offline stub of `serde`.
//!
//! The build environment has no crates registry, so this crate provides
//! just enough of serde's surface for the sources to compile:
//!
//! * marker traits [`Serialize`] / [`Deserialize`] blanket-implemented for
//!   every type, and
//! * re-exports of the no-op derive macros from the `serde_derive` stub.
//!
//! Nothing actually serializes; `serde_json::to_string` (also stubbed)
//! reports an error and callers fall back to `Debug` formatting. Swap this
//! for the real serde by pointing the workspace dependency back at
//! crates.io once the environment has registry access.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; implemented for every type.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; implemented for every type.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}

impl<T: ?Sized> DeserializeOwned for T {}

/// Minimal `serde::de` namespace for code that names it in bounds.
pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}

/// Minimal `serde::ser` namespace for code that names it in bounds.
pub mod ser {
    pub use crate::Serialize;
}
