//! Probe cost (Equation 1): step costs, broadcast factor χ, PCost.

use crate::estimate::CardinalityEstimator;
use clash_common::{AttrRef, RelationSet};
use clash_query::{JoinQuery, ProbeOrder};
use serde::{Deserialize, Serialize};

/// Partitioning decoration of one probe step's target store: which MIR the
/// store holds, by which attribute it is partitioned (if any) and across
/// how many workers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PartitionedStep {
    /// Relations held by the probed store.
    pub relations: RelationSet,
    /// Partitioning attribute, `None` when the store has a single partition
    /// or is partitioned round-robin.
    pub partition: Option<AttrRef>,
    /// Number of partitions (worker tasks) of the store.
    pub parallelism: usize,
}

impl PartitionedStep {
    /// An unpartitioned (single worker) store over the given relations.
    pub fn unpartitioned(relations: RelationSet) -> Self {
        PartitionedStep {
            relations,
            partition: None,
            parallelism: 1,
        }
    }

    /// A store partitioned by `attr` across `parallelism` workers.
    pub fn partitioned(relations: RelationSet, attr: AttrRef, parallelism: usize) -> Self {
        PartitionedStep {
            relations,
            partition: Some(attr),
            parallelism: parallelism.max(1),
        }
    }
}

/// The broadcast factor χ of a probe step (Equation 1).
///
/// A probing tuple that covers the relations in `head` knows the value of
/// the target store's partitioning attribute iff some equi-join predicate
/// of the query links that attribute to a relation inside `head`. If it
/// does, the tuple is routed to exactly one partition (χ = 1); otherwise it
/// must be broadcast to all partitions (χ = parallelism).
pub fn broadcast_factor(query: &JoinQuery, head: &RelationSet, target: &PartitionedStep) -> f64 {
    let parallelism = target.parallelism.max(1) as f64;
    if parallelism <= 1.0 {
        return 1.0;
    }
    match target.partition {
        None => parallelism,
        Some(attr) => {
            let known = query.predicates.iter().any(|p| {
                (p.left == attr && head.contains(p.right.relation))
                    || (p.right == attr && head.contains(p.left.relation))
            });
            if known {
                1.0
            } else {
                parallelism
            }
        }
    }
}

/// Detailed cost of a single probe step, useful for explain output and the
/// experiment harness.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StepCostBreakdown {
    /// Estimated join cardinality of the head (relations covered before the
    /// step).
    pub head_cardinality: f64,
    /// The `1/|head|` latest-tuple fraction.
    pub fraction: f64,
    /// Broadcast factor χ of the target store.
    pub chi: f64,
    /// Resulting step cost (product of the three).
    pub cost: f64,
}

/// Cost of the `step_idx`-th step (0-based) of a probe order: the number of
/// tuple copies sent to the target store per time unit.
pub fn step_cost(
    estimator: &CardinalityEstimator<'_>,
    query: &JoinQuery,
    order: &ProbeOrder,
    step_idx: usize,
    target: &PartitionedStep,
) -> StepCostBreakdown {
    let head = order.head_before(step_idx);
    let head_cardinality = estimator.join_cardinality(query, &head);
    let fraction = 1.0 / head.len().max(1) as f64;
    let chi = broadcast_factor(query, &head, target);
    StepCostBreakdown {
        head_cardinality,
        fraction,
        chi,
        cost: head_cardinality * fraction * chi,
    }
}

/// `PCost(σ)`: total probe cost of one probe order under a given
/// partitioning of its target stores.
///
/// `partitioning` must contain one entry per step of the probe order, in
/// step order. Panics when the lengths differ — the optimizer always
/// decorates every step.
pub fn probe_cost(
    estimator: &CardinalityEstimator<'_>,
    query: &JoinQuery,
    order: &ProbeOrder,
    partitioning: &[PartitionedStep],
) -> f64 {
    assert_eq!(
        partitioning.len(),
        order.len(),
        "one PartitionedStep per probe step required"
    );
    (0..order.len())
        .map(|j| step_cost(estimator, query, order, j, &partitioning[j]).cost)
        .sum()
}

/// Probe cost of a whole query given one decorated probe order per starting
/// relation (Equation 1 summed over all inputs). The iterator yields
/// `(probe order, partitioning of its steps)` pairs.
pub fn query_probe_cost<'a>(
    estimator: &CardinalityEstimator<'_>,
    query: &JoinQuery,
    orders: impl IntoIterator<Item = (&'a ProbeOrder, &'a [PartitionedStep])>,
) -> f64 {
    orders
        .into_iter()
        .map(|(o, parts)| probe_cost(estimator, query, o, parts))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use clash_catalog::{Catalog, Statistics};
    use clash_common::{QueryId, RelationId, Window};
    use clash_query::{construct_probe_orders_for_start, enumerate_mirs, parse_query};

    /// The multi-query optimization example of Section V-2: rates 100,
    /// |R ⋈ S| = 100, |S ⋈ T| = 150.
    fn setup() -> (Catalog, Statistics) {
        let mut catalog = Catalog::new();
        catalog
            .register("R", ["a"], Window::unbounded(), 1)
            .unwrap();
        catalog
            .register("S", ["a", "b"], Window::unbounded(), 1)
            .unwrap();
        catalog
            .register("T", ["b"], Window::unbounded(), 5)
            .unwrap();
        let mut stats = Statistics::new();
        for i in 0..3 {
            stats.set_rate(RelationId::new(i), 100.0);
        }
        stats.set_selectivity(
            catalog.attr("R", "a").unwrap(),
            catalog.attr("S", "a").unwrap(),
            0.01,
        );
        stats.set_selectivity(
            catalog.attr("S", "b").unwrap(),
            catalog.attr("T", "b").unwrap(),
            0.015,
        );
        (catalog, stats)
    }

    fn rs(ids: &[u32]) -> RelationSet {
        ids.iter().map(|i| RelationId::new(*i)).collect()
    }

    fn unpartitioned(sets: &[RelationSet]) -> Vec<PartitionedStep> {
        sets.iter()
            .map(|s| PartitionedStep::unpartitioned(*s))
            .collect()
    }

    #[test]
    fn paper_example_probe_costs() {
        let (catalog, stats) = setup();
        let q = parse_query(&catalog, QueryId::new(0), "q1", "R(a), S(a,b), T(b)").unwrap();
        let est = CardinalityEstimator::rate_based(&catalog, &stats);

        // ⟨R,S,T⟩: 100 + |R⋈S|/2 = 100 + 50 = 150.
        let rst = ProbeOrder::new(q.id, RelationId::new(0), vec![rs(&[1]), rs(&[2])]);
        let cost = probe_cost(&est, &q, &rst, &unpartitioned(&[rs(&[1]), rs(&[2])]));
        assert!((cost - 150.0).abs() < 1e-9);

        // ⟨T,S,R⟩: 100 + |S⋈T|/2 = 175.
        let tsr = ProbeOrder::new(q.id, RelationId::new(2), vec![rs(&[1]), rs(&[0])]);
        let cost = probe_cost(&est, &q, &tsr, &unpartitioned(&[rs(&[1]), rs(&[0])]));
        assert!((cost - 175.0).abs() < 1e-9);

        // ⟨S,R,T⟩: 100 + 50 = 150.
        let srt = ProbeOrder::new(q.id, RelationId::new(1), vec![rs(&[0]), rs(&[2])]);
        let cost = probe_cost(&est, &q, &srt, &unpartitioned(&[rs(&[0]), rs(&[2])]));
        assert!((cost - 150.0).abs() < 1e-9);

        // Individually optimal plan of the example: 150 + 150 + 175 = 475.
        let total = query_probe_cost(
            &est,
            &q,
            [
                (&rst, unpartitioned(&[rs(&[1]), rs(&[2])]).as_slice()),
                (&srt, unpartitioned(&[rs(&[0]), rs(&[2])]).as_slice()),
                (&tsr, unpartitioned(&[rs(&[1]), rs(&[0])]).as_slice()),
            ],
        );
        assert!((total - 475.0).abs() < 1e-9);
    }

    #[test]
    fn probing_a_materialized_intermediate_costs_one_step() {
        let (catalog, stats) = setup();
        let q = parse_query(&catalog, QueryId::new(0), "q1", "R(a), S(a,b), T(b)").unwrap();
        let est = CardinalityEstimator::rate_based(&catalog, &stats);
        // ⟨R, ST⟩ costs only the first step: 100.
        let r_st = ProbeOrder::new(q.id, RelationId::new(0), vec![rs(&[1, 2])]);
        let cost = probe_cost(&est, &q, &r_st, &unpartitioned(&[rs(&[1, 2])]));
        assert!((cost - 100.0).abs() < 1e-9);
    }

    #[test]
    fn broadcast_factor_depends_on_predicate_knowledge() {
        let (catalog, stats) = setup();
        let q = parse_query(&catalog, QueryId::new(0), "q1", "R(a), S(a,b), T(b)").unwrap();
        let est = CardinalityEstimator::rate_based(&catalog, &stats);
        let t_attr = catalog.attr("T", "b").unwrap();
        let s_b = catalog.attr("S", "b").unwrap();

        // Probing the T-store (parallelism 5, partitioned by T.b) from a
        // head {R}: R has no predicate with T.b -> broadcast.
        let target = PartitionedStep::partitioned(rs(&[2]), t_attr, 5);
        assert_eq!(broadcast_factor(&q, &rs(&[0]), &target), 5.0);
        // From a head {R,S}: S.b = T.b is known -> χ = 1.
        assert_eq!(broadcast_factor(&q, &rs(&[0, 1]), &target), 1.0);
        // Partitioning by an attribute no predicate links to the head.
        let target_sb = PartitionedStep::partitioned(rs(&[1, 2]), s_b, 5);
        assert_eq!(
            broadcast_factor(&q, &rs(&[0]), &target_sb),
            5.0,
            "R knows a, not b"
        );
        // Unpartitioned multi-worker stores always broadcast.
        let rr = PartitionedStep {
            relations: rs(&[2]),
            partition: None,
            parallelism: 4,
        };
        assert_eq!(broadcast_factor(&q, &rs(&[0, 1]), &rr), 4.0);
        // Single-partition stores never broadcast.
        assert_eq!(
            broadcast_factor(&q, &rs(&[0]), &PartitionedStep::unpartitioned(rs(&[2]))),
            1.0
        );
        let _ = est;
    }

    #[test]
    fn step_cost_breakdown_is_consistent() {
        let (catalog, stats) = setup();
        let q = parse_query(&catalog, QueryId::new(0), "q1", "R(a), S(a,b), T(b)").unwrap();
        let est = CardinalityEstimator::rate_based(&catalog, &stats);
        let t_attr = catalog.attr("T", "b").unwrap();
        let order = ProbeOrder::new(q.id, RelationId::new(0), vec![rs(&[1]), rs(&[2])]);
        let target = PartitionedStep::partitioned(rs(&[2]), t_attr, 5);
        let b = step_cost(&est, &q, &order, 1, &target);
        assert!((b.head_cardinality - 100.0).abs() < 1e-9);
        assert!((b.fraction - 0.5).abs() < 1e-9);
        assert_eq!(b.chi, 1.0);
        assert!((b.cost - 50.0).abs() < 1e-9);
        assert!((b.cost - b.head_cardinality * b.fraction * b.chi).abs() < 1e-12);
    }

    #[test]
    fn chi_multiplies_step_cost_when_broadcasting() {
        let (catalog, stats) = setup();
        let q = parse_query(&catalog, QueryId::new(0), "q1", "R(a), S(a,b), T(b)").unwrap();
        let est = CardinalityEstimator::rate_based(&catalog, &stats);
        let s_a = catalog.attr("S", "a").unwrap();
        // Probe order ⟨T, S, R⟩ where the S-store is partitioned by S.a:
        // T knows b but not a, so the first step broadcasts to all 5
        // S-partitions (illustration 7 in Fig. 2 of the paper).
        let order = ProbeOrder::new(q.id, RelationId::new(2), vec![rs(&[1]), rs(&[0])]);
        let s_store = PartitionedStep::partitioned(rs(&[1]), s_a, 5);
        let b = step_cost(&est, &q, &order, 0, &s_store);
        assert!((b.cost - 500.0).abs() < 1e-9, "100 tuples × χ=5");
    }

    #[test]
    #[should_panic(expected = "one PartitionedStep per probe step")]
    fn mismatched_partitioning_length_panics() {
        let (catalog, stats) = setup();
        let q = parse_query(&catalog, QueryId::new(0), "q1", "R(a), S(a,b), T(b)").unwrap();
        let est = CardinalityEstimator::rate_based(&catalog, &stats);
        let order = ProbeOrder::new(q.id, RelationId::new(0), vec![rs(&[1]), rs(&[2])]);
        let _ = probe_cost(&est, &q, &order, &unpartitioned(&[rs(&[1])]));
    }

    #[test]
    fn probe_orders_from_enumeration_have_positive_costs() {
        let (catalog, stats) = setup();
        let q = parse_query(&catalog, QueryId::new(0), "q1", "R(a), S(a,b), T(b)").unwrap();
        let est = CardinalityEstimator::rate_based(&catalog, &stats);
        let mirs = enumerate_mirs(&q, None);
        for start in q.relations.iter() {
            for order in construct_probe_orders_for_start(&q, &mirs, start, None) {
                let parts: Vec<PartitionedStep> = order
                    .steps
                    .iter()
                    .map(|s| PartitionedStep::unpartitioned(*s))
                    .collect();
                assert!(probe_cost(&est, &q, &order, &parts) > 0.0);
            }
        }
    }
}
