//! The time-trigger flusher: a background thread that sweeps the open
//! sources' micro-batch buffers so sparse or idle streams cannot strand
//! buffered deliveries until the next barrier.
//!
//! Every producer slot is swept — the open sources *and* the
//! coordinator's own buffer, which is registered in the same registry: a
//! producer that simply stops pushing (the per-push age check never runs
//! again) is exactly the case the `EngineConfig::micro_batch_max_delay`
//! trigger exists for. When everything is idle a sweep is one registry
//! lock plus one uncontended lock per slot — the accepted cost of the
//! liveness guarantee.

use crate::ingest::shared::ControlShared;
use crate::parallel::worker::WorkerMsg;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::Sender;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration as StdDuration;

/// Handle to the running flusher thread (engine-owned).
#[derive(Debug)]
pub(crate) struct Flusher {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Flusher {
    /// Spawns the sweep thread over the registry in `shared`, flushing
    /// buffers older than `max_delay` to `senders`.
    pub fn spawn(
        shared: Arc<ControlShared>,
        senders: Vec<Sender<WorkerMsg>>,
        max_delay: StdDuration,
    ) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = stop.clone();
        // Sweep at half the trigger so a buffer is flushed at most ~1.5x
        // max_delay after its oldest delivery, bounded to stay responsive
        // to shutdown.
        let tick = (max_delay / 2).clamp(StdDuration::from_millis(1), StdDuration::from_millis(20));
        let handle = std::thread::Builder::new()
            .name("clash-ingest-flusher".into())
            .spawn(move || {
                while !stop_flag.load(Ordering::Acquire) {
                    std::thread::sleep(tick);
                    for slot in shared.slots() {
                        let mut inner = slot.inner.lock().expect("source slot");
                        if inner.buf.is_stale(max_delay) {
                            inner.flush(&senders);
                        }
                    }
                }
            })
            .expect("spawn ingest flusher thread");
        Flusher {
            stop,
            handle: Some(handle),
        }
    }

    /// Stops and joins the sweep thread.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Flusher {
    fn drop(&mut self) {
        self.stop();
    }
}
