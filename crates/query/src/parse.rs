//! Parser for the paper's query notation.
//!
//! Queries in the paper are written as `R(a), S(a,b), T(b)`: a list of
//! relations, each with the attributes that participate in joins. Two
//! relations that list the same attribute name are connected by an
//! equi-join predicate on that attribute.
//!
//! The parser resolves relation and attribute names through the
//! [`Catalog`]; it expects every mentioned attribute to exist in the
//! relation's registered schema. Attribute-name sharing follows the paper
//! convention: identical names denote equality. (For TPC-H-style queries
//! where joined columns have different names, use
//! [`crate::QueryBuilder::join`] instead.)

use crate::predicate::EquiPredicate;
use crate::query::JoinQuery;
use clash_catalog::Catalog;
use clash_common::{AttrRef, ClashError, QueryId, RelationSet, Result, Window};

/// One parsed `Relation(attr, ...)` term.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Term {
    relation: String,
    attributes: Vec<String>,
}

/// Splits `R(a), S(a,b), T(b)` into terms.
fn tokenize(input: &str) -> Result<Vec<Term>> {
    let mut terms = Vec::new();
    let mut rest = input.trim();
    while !rest.is_empty() {
        let open = rest.find('(').ok_or_else(|| {
            ClashError::invalid_query(format!("expected '(' in query fragment '{rest}'"))
        })?;
        let close = rest[open..].find(')').map(|i| i + open).ok_or_else(|| {
            ClashError::invalid_query(format!("unclosed '(' in query fragment '{rest}'"))
        })?;
        let relation = rest[..open]
            .trim()
            .trim_start_matches(',')
            .trim()
            .to_string();
        if relation.is_empty() {
            return Err(ClashError::invalid_query(format!(
                "missing relation name before '(' in '{rest}'"
            )));
        }
        let attributes: Vec<String> = rest[open + 1..close]
            .split(',')
            .map(|a| a.trim().to_string())
            .filter(|a| !a.is_empty())
            .collect();
        terms.push(Term {
            relation,
            attributes,
        });
        rest = rest[close + 1..].trim().trim_start_matches(',').trim();
    }
    if terms.is_empty() {
        return Err(ClashError::invalid_query("empty query string"));
    }
    Ok(terms)
}

/// Parses a query in paper notation against a catalog.
///
/// ```
/// use clash_catalog::Catalog;
/// use clash_common::{QueryId, Window};
/// use clash_query::parse_query;
///
/// let mut catalog = Catalog::new();
/// catalog.register("R", ["a"], Window::secs(5), 1).unwrap();
/// catalog.register("S", ["a", "b"], Window::secs(5), 1).unwrap();
/// catalog.register("T", ["b"], Window::secs(5), 1).unwrap();
/// let q = parse_query(&catalog, QueryId::new(0), "q1", "R(a), S(a,b), T(b)").unwrap();
/// assert_eq!(q.size(), 3);
/// assert_eq!(q.predicates.len(), 2);
/// ```
pub fn parse_query(
    catalog: &Catalog,
    id: QueryId,
    name: impl Into<String>,
    input: &str,
) -> Result<JoinQuery> {
    let terms = tokenize(input)?;
    let mut relations = RelationSet::new();
    // (attribute name, attr ref) pairs in term order.
    let mut named_attrs: Vec<(String, AttrRef)> = Vec::new();
    for term in &terms {
        let meta = catalog.relation_by_name(&term.relation)?;
        if relations.contains(meta.id) {
            return Err(ClashError::invalid_query(format!(
                "relation {} mentioned twice (self joins are not supported)",
                term.relation
            )));
        }
        relations.insert(meta.id);
        for attr in &term.attributes {
            let r = catalog.attr(&term.relation, attr)?;
            named_attrs.push((attr.clone(), r));
        }
    }
    // Connect every pair of equally named attributes from different relations.
    let mut predicates = Vec::new();
    for i in 0..named_attrs.len() {
        for j in (i + 1)..named_attrs.len() {
            if named_attrs[i].0 == named_attrs[j].0
                && named_attrs[i].1.relation != named_attrs[j].1.relation
            {
                predicates.push(EquiPredicate::new(named_attrs[i].1, named_attrs[j].1));
            }
        }
    }
    JoinQuery::new(id, name, relations, predicates, None)
}

/// Parses a query and applies a per-query window override.
pub fn parse_query_with_window(
    catalog: &Catalog,
    id: QueryId,
    name: impl Into<String>,
    input: &str,
    window: Window,
) -> Result<JoinQuery> {
    let mut q = parse_query(catalog, id, name, input)?;
    q.window = Some(window);
    Ok(q)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register("R", ["a", "b"], Window::secs(5), 1).unwrap();
        c.register("S", ["b", "c"], Window::secs(5), 1).unwrap();
        c.register("T", ["c", "d"], Window::secs(5), 1).unwrap();
        c.register("U", ["d"], Window::secs(5), 1).unwrap();
        c
    }

    #[test]
    fn parses_paper_example_q1() {
        let c = catalog();
        let q = parse_query(&c, QueryId::new(0), "q1", "R(b), S(b,c), T(c)").unwrap();
        assert_eq!(q.size(), 3);
        assert_eq!(q.predicates.len(), 2);
        let names: Vec<String> = q
            .predicates
            .iter()
            .map(|p| format!("{} = {}", c.attr_name(&p.left), c.attr_name(&p.right)))
            .collect();
        assert!(names.contains(&"R.b = S.b".to_string()));
        assert!(names.contains(&"S.c = T.c".to_string()));
    }

    #[test]
    fn parses_q2_over_different_relations() {
        let c = catalog();
        let q = parse_query(&c, QueryId::new(1), "q2", "S(c), T(c,d), U(d)").unwrap();
        assert_eq!(q.size(), 3);
        assert_eq!(q.predicates.len(), 2);
    }

    #[test]
    fn whitespace_and_trailing_commas_tolerated() {
        let c = catalog();
        let q = parse_query(&c, QueryId::new(0), "q", "  R( b ) ,S(b, c),  T(c) ").unwrap();
        assert_eq!(q.size(), 3);
        assert_eq!(q.predicates.len(), 2);
    }

    #[test]
    fn unknown_relation_or_attribute_rejected() {
        let c = catalog();
        assert!(parse_query(&c, QueryId::new(0), "q", "R(b), X(b)").is_err());
        assert!(parse_query(&c, QueryId::new(0), "q", "R(zzz), S(zzz)").is_err());
    }

    #[test]
    fn malformed_strings_rejected() {
        let c = catalog();
        assert!(parse_query(&c, QueryId::new(0), "q", "").is_err());
        assert!(parse_query(&c, QueryId::new(0), "q", "R(b").is_err());
        assert!(parse_query(&c, QueryId::new(0), "q", "(b)").is_err());
    }

    #[test]
    fn duplicate_relation_rejected() {
        let c = catalog();
        assert!(parse_query(&c, QueryId::new(0), "q", "R(b), R(b)").is_err());
    }

    #[test]
    fn disconnected_query_rejected_via_validation() {
        let c = catalog();
        // R(b) and T(c) share no attribute name -> no predicate -> invalid.
        let result = parse_query(&c, QueryId::new(0), "q", "R(b), T(c)");
        assert!(matches!(result, Err(ClashError::InvalidQuery(_))));
    }

    #[test]
    fn window_override_applies() {
        let c = catalog();
        let q = parse_query_with_window(
            &c,
            QueryId::new(0),
            "q",
            "R(b), S(b,c), T(c)",
            Window::secs(42),
        )
        .unwrap();
        assert_eq!(q.window, Some(Window::secs(42)));
    }

    #[test]
    fn four_way_linear_query() {
        let c = catalog();
        let q = parse_query(&c, QueryId::new(0), "q", "R(b), S(b,c), T(c,d), U(d)").unwrap();
        assert_eq!(q.size(), 4);
        assert_eq!(q.predicates.len(), 3);
    }
}
