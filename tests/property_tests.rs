//! Property-based tests over the core data structures and invariants,
//! spanning crates (hence hosted as an integration test of `clash-core`).

use clash_common::{AttrId, AttrRef, QueryId, RelationId, RelationSet, Timestamp, Window};
use clash_ilp::{
    enumerate_optimal, solve, LinExpr, Model, Sense, SolveStatus, SolverConfig, VarId,
};
use clash_query::{construct_probe_orders_for_start, enumerate_mirs, EquiPredicate, JoinQuery};
use proptest::prelude::*;

fn relation_ids(max: u32) -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(0..max, 1..10)
}

proptest! {
    /// RelationSet algebra behaves like a set of integers.
    #[test]
    fn relation_set_algebra(a in relation_ids(64), b in relation_ids(64)) {
        use std::collections::BTreeSet;
        let sa: RelationSet = a.iter().map(|i| RelationId::new(*i)).collect();
        let sb: RelationSet = b.iter().map(|i| RelationId::new(*i)).collect();
        let ba: BTreeSet<u32> = a.iter().copied().collect();
        let bb: BTreeSet<u32> = b.iter().copied().collect();
        let union: Vec<u32> = sa.union(&sb).iter().map(|r| r.0).collect();
        let expected: Vec<u32> = ba.union(&bb).copied().collect();
        prop_assert_eq!(union, expected);
        let inter: Vec<u32> = sa.intersection(&sb).iter().map(|r| r.0).collect();
        let expected: Vec<u32> = ba.intersection(&bb).copied().collect();
        prop_assert_eq!(inter, expected);
        let diff: Vec<u32> = sa.difference(&sb).iter().map(|r| r.0).collect();
        let expected: Vec<u32> = ba.difference(&bb).copied().collect();
        prop_assert_eq!(diff, expected);
        prop_assert_eq!(sa.len(), ba.len());
        prop_assert_eq!(sa.is_disjoint(&sb), ba.is_disjoint(&bb));
        prop_assert_eq!(sa.is_subset(&sb), ba.is_subset(&bb));
    }

    /// Window containment is consistent with its horizon.
    #[test]
    fn window_containment(probe in 0u64..1_000_000, age in 0u64..1_000_000, len in 1u64..100_000) {
        let w = Window::new(clash_common::Duration::from_millis(len));
        let stored = Timestamp::from_millis(probe.saturating_sub(age));
        let probe_ts = Timestamp::from_millis(probe);
        let contained = w.contains(probe_ts, stored);
        prop_assert_eq!(contained, stored >= w.horizon(probe_ts) && stored <= probe_ts);
    }

    /// Every probe order produced by Algorithm 1 for a random linear query
    /// is structurally valid, covers the whole query and avoids cross
    /// products; prefixes grow monotonically.
    #[test]
    fn probe_orders_are_valid_for_linear_queries(n in 2usize..6, start_idx in 0usize..6) {
        let n = n.min(5);
        let relations: RelationSet = (0..n as u32).map(RelationId::new).collect();
        let predicates: Vec<EquiPredicate> = (0..n as u32 - 1)
            .map(|i| EquiPredicate::new(
                AttrRef::new(RelationId::new(i), AttrId::new(1)),
                AttrRef::new(RelationId::new(i + 1), AttrId::new(0)),
            ))
            .collect();
        let query = JoinQuery::new(QueryId::new(0), "chain", relations, predicates, None).unwrap();
        let mirs = enumerate_mirs(&query, None);
        let start = RelationId::new((start_idx % n) as u32);
        let orders = construct_probe_orders_for_start(&query, &mirs, start, None);
        prop_assert!(!orders.is_empty());
        for order in &orders {
            prop_assert!(order.is_valid_for(&query));
            prop_assert_eq!(order.covered(), query.relations);
            let mut prev = RelationSet::singleton(start);
            for j in 0..order.len() {
                let head = order.head_after(j);
                prop_assert!(prev.is_proper_subset(&head));
                prev = head;
            }
        }
    }

    /// MIR enumeration only returns connected subsets, always includes the
    /// singletons, and is closed under the query relations.
    #[test]
    fn mirs_are_connected_subsets(n in 2usize..6) {
        let relations: RelationSet = (0..n as u32).map(RelationId::new).collect();
        let predicates: Vec<EquiPredicate> = (0..n as u32 - 1)
            .map(|i| EquiPredicate::new(
                AttrRef::new(RelationId::new(i), AttrId::new(1)),
                AttrRef::new(RelationId::new(i + 1), AttrId::new(0)),
            ))
            .collect();
        let query = JoinQuery::new(QueryId::new(0), "chain", relations, predicates, None).unwrap();
        let graph = query.graph();
        let mirs = enumerate_mirs(&query, None);
        let singletons = mirs.iter().filter(|m| m.is_base()).count();
        prop_assert_eq!(singletons, n);
        for m in &mirs {
            prop_assert!(m.relations.is_subset(&query.relations));
            prop_assert!(graph.is_connected(&m.relations));
        }
    }

    /// The branch-and-bound solver is exact: on random small
    /// selection-with-sharing models it matches brute-force enumeration.
    #[test]
    fn solver_matches_enumeration(seed in 0u64..500) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut model = Model::new();
        let n_steps = rng.gen_range(2..5usize);
        let steps: Vec<VarId> = (0..n_steps)
            .map(|i| model.add_binary(format!("y{i}"), rng.gen_range(1..10) as f64))
            .collect();
        for g in 0..rng.gen_range(1..4usize) {
            let mut alts = Vec::new();
            for a in 0..rng.gen_range(1..4usize) {
                let x = model.add_binary(format!("x{g}_{a}"), 0.0);
                let mut expr = LinExpr::new();
                let mut total = 0.0;
                for &s in &steps {
                    if rng.gen_bool(0.5) {
                        let c = model.objective_coeff(s);
                        expr.add(s, c);
                        total += c;
                    }
                }
                if total == 0.0 {
                    let c = model.objective_coeff(steps[0]);
                    expr.add(steps[0], c);
                    total = c;
                }
                expr.add(x, -total);
                model.add_constraint(format!("cost{g}_{a}"), expr, Sense::Ge, 0.0);
                alts.push(x);
            }
            model.add_choose_one(format!("choice{g}"), alts);
        }
        let brute = enumerate_optimal(&model);
        let solved = solve(&model, SolverConfig::default());
        match brute {
            Some((_, expected)) => {
                prop_assert_eq!(solved.status, SolveStatus::Optimal);
                prop_assert!((solved.objective - expected).abs() < 1e-6);
            }
            None => prop_assert_eq!(solved.status, SolveStatus::Infeasible),
        }
    }

    /// Probe costs are non-negative and additive in their steps for random
    /// rates and selectivities.
    #[test]
    fn probe_cost_is_nonnegative_and_additive(
        rates in proptest::collection::vec(1.0f64..10_000.0, 3),
        sel in proptest::collection::vec(0.0001f64..1.0, 2),
    ) {
        use clash_catalog::{Catalog, Statistics};
        use clash_cost::{probe_cost, step_cost, CardinalityEstimator, PartitionedStep};
        use clash_query::parse_query;
        let mut catalog = Catalog::new();
        catalog.register("R", ["a"], Window::unbounded(), 1).unwrap();
        catalog.register("S", ["a", "b"], Window::unbounded(), 1).unwrap();
        catalog.register("T", ["b"], Window::unbounded(), 1).unwrap();
        let mut stats = Statistics::new();
        for (i, r) in rates.iter().enumerate() {
            stats.set_rate(RelationId::new(i as u32), *r);
        }
        stats.set_selectivity(catalog.attr("R", "a").unwrap(), catalog.attr("S", "a").unwrap(), sel[0]);
        stats.set_selectivity(catalog.attr("S", "b").unwrap(), catalog.attr("T", "b").unwrap(), sel[1]);
        let q = parse_query(&catalog, QueryId::new(0), "q", "R(a), S(a,b), T(b)").unwrap();
        let est = CardinalityEstimator::rate_based(&catalog, &stats);
        let order = clash_query::ProbeOrder::new(
            q.id,
            RelationId::new(0),
            vec![RelationSet::singleton(RelationId::new(1)), RelationSet::singleton(RelationId::new(2))],
        );
        let parts: Vec<PartitionedStep> = order
            .steps
            .iter()
            .map(|s| PartitionedStep::unpartitioned(*s))
            .collect();
        let total = probe_cost(&est, &q, &order, &parts);
        prop_assert!(total >= 0.0);
        let sum: f64 = (0..order.len())
            .map(|j| step_cost(&est, &q, &order, j, &parts[j]).cost)
            .sum();
        prop_assert!((total - sum).abs() < 1e-6 * total.max(1.0));
    }
}
