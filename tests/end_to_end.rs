//! Cross-crate integration tests: the full pipeline (catalog → query →
//! optimizer → runtime) must produce exactly the results of a naive
//! reference join, for every planning strategy, on randomized streams.

use clash_common::{QueryId, RelationId, Timestamp, Tuple, TupleBuilder, Value, Window};
use clash_core::{ClashSystem, Strategy, SystemConfig};
use clash_datagen::{SyntheticEnv, SyntheticWorkloadConfig, TpchGenerator, TpchWorkload};
use clash_optimizer::Planner;
use clash_query::JoinQuery;
use clash_runtime::{EngineConfig, LocalEngine};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Naive reference implementation: for a query and a list of `(relation,
/// tuple)` arrivals, count every combination of one tuple per query
/// relation that satisfies all predicates — the timestamp semantics
/// (each result counted once, unbounded window) match the engine's.
fn reference_result_count(query: &JoinQuery, stream: &[(RelationId, Tuple)]) -> u64 {
    let relations: Vec<RelationId> = query.relations.iter().collect();
    let per_relation: Vec<Vec<&Tuple>> = relations
        .iter()
        .map(|r| {
            stream
                .iter()
                .filter(|(rel, _)| rel == r)
                .map(|(_, t)| t)
                .collect()
        })
        .collect();
    // Backtracking over one tuple per relation.
    fn recurse(
        query: &JoinQuery,
        per_relation: &[Vec<&Tuple>],
        chosen: &mut Vec<Tuple>,
        depth: usize,
        count: &mut u64,
    ) {
        if depth == per_relation.len() {
            *count += 1;
            return;
        }
        'next: for t in &per_relation[depth] {
            // All timestamps must be distinct for the "probe only earlier
            // tuples" semantics to count each result exactly once; the
            // generators used here guarantee that.
            for p in &query.predicates {
                let mut left = None;
                let mut right = None;
                for prev in chosen.iter().chain(std::iter::once(*t)) {
                    if let Some(v) = prev.get(&p.left) {
                        left = Some(v.clone());
                    }
                    if let Some(v) = prev.get(&p.right) {
                        right = Some(v.clone());
                    }
                }
                if let (Some(l), Some(r)) = (left, right) {
                    if !l.join_eq(&r) {
                        continue 'next;
                    }
                }
            }
            chosen.push((*t).clone());
            recurse(query, per_relation, chosen, depth + 1, count);
            chosen.pop();
        }
    }
    let mut count = 0;
    recurse(query, &per_relation, &mut Vec::new(), 0, &mut count);
    count
}

fn random_stream(
    catalog: &clash_catalog::Catalog,
    relations: &[&str],
    n_per_relation: usize,
    key_domain: i64,
    seed: u64,
) -> Vec<(RelationId, Tuple)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut stream = Vec::new();
    let mut ts = 0u64;
    for i in 0..n_per_relation {
        for name in relations {
            let meta = catalog.relation_by_name(name).unwrap();
            ts += 1;
            let mut b = TupleBuilder::new(&meta.schema, Timestamp::from_millis(ts));
            for attr in &meta.schema.attributes {
                b = b.set(&attr.name, rng.gen_range(0..key_domain));
            }
            let _ = i;
            stream.push((meta.id, b.build()));
        }
    }
    stream
}

#[test]
fn engine_matches_reference_join_for_all_strategies() {
    let mut catalog = clash_catalog::Catalog::new();
    catalog
        .register("A", ["x"], Window::unbounded(), 2)
        .unwrap();
    catalog
        .register("B", ["x", "y"], Window::unbounded(), 2)
        .unwrap();
    catalog
        .register("C", ["y", "z"], Window::unbounded(), 1)
        .unwrap();
    catalog
        .register("D", ["z"], Window::unbounded(), 1)
        .unwrap();
    let stats = clash_catalog::Statistics::new();
    let q1 =
        clash_query::parse_query(&catalog, QueryId::new(0), "q1", "A(x), B(x,y), C(y)").unwrap();
    let q2 =
        clash_query::parse_query(&catalog, QueryId::new(1), "q2", "B(y), C(y,z), D(z)").unwrap();
    let queries = vec![q1.clone(), q2.clone()];

    let stream = random_stream(&catalog, &["A", "B", "C", "D"], 30, 6, 99);
    let expected_q1 = reference_result_count(&q1, &stream);
    let expected_q2 = reference_result_count(&q2, &stream);
    assert!(expected_q1 > 0, "workload must produce q1 results");
    assert!(expected_q2 > 0, "workload must produce q2 results");

    let planner = Planner::with_defaults(&catalog, &stats);
    for strategy in [Strategy::Independent, Strategy::Shared, Strategy::GlobalIlp] {
        let report = planner.plan(&queries, strategy).unwrap();
        let mut engine = LocalEngine::new(catalog.clone(), report.plan, EngineConfig::default());
        for (relation, tuple) in &stream {
            engine.ingest(*relation, tuple.clone()).unwrap();
        }
        let snap = engine.snapshot();
        assert_eq!(
            snap.results_for(QueryId::new(0)),
            expected_q1,
            "{strategy:?} q1 result count"
        );
        assert_eq!(
            snap.results_for(QueryId::new(1)),
            expected_q2,
            "{strategy:?} q2 result count"
        );
    }
}

#[test]
fn clash_system_add_and_remove_queries_mid_stream() {
    let mut clash = ClashSystem::new(SystemConfig {
        collect_results: true,
        ..SystemConfig::default()
    });
    clash
        .register_relation("R", ["a"], Window::secs(3600), 1)
        .unwrap();
    clash
        .register_relation("S", ["a", "b"], Window::secs(3600), 1)
        .unwrap();
    clash
        .register_relation("T", ["b"], Window::secs(3600), 1)
        .unwrap();
    clash.register_query("q1", "R(a), S(a,b), T(b)").unwrap();
    clash.deploy(Strategy::GlobalIlp).unwrap();

    let mut produced = 0;
    for i in 0..250u64 {
        let ts = i * 20;
        let a = (i % 25) as i64;
        let b = (i % 17) as i64;
        let r = clash.tuple("R", ts, &[("a", Value::Int(a))]).unwrap();
        let s = clash
            .tuple("S", ts + 1, &[("a", Value::Int(a)), ("b", Value::Int(b))])
            .unwrap();
        let t = clash.tuple("T", ts + 2, &[("b", Value::Int(b))]).unwrap();
        produced += clash.ingest("R", r).unwrap();
        produced += clash.ingest("S", s).unwrap();
        produced += clash.ingest("T", t).unwrap();
        if i == 125 {
            // Register a second query mid-stream; it is picked up at the
            // next epoch boundary.
            clash.register_query("q2", "S(b), T(b)").unwrap();
        }
    }
    assert!(produced > 0);
    let snap = clash.snapshot().unwrap();
    assert!(snap.results_for(QueryId::new(0)) > 0);
    // The second query started reporting after it was installed.
    assert!(
        snap.results_for(QueryId::new(1)) > 0,
        "q2 never produced results"
    );
    // Removing a query keeps the system running.
    clash.remove_query(QueryId::new(0));
    let r = clash
        .tuple("R", 10_000_000, &[("a", Value::Int(1))])
        .unwrap();
    clash.ingest("R", r).unwrap();
}

#[test]
fn tpch_workload_runs_end_to_end_with_consistent_results() {
    let workload = TpchWorkload::new(2, Window::secs(3600)).unwrap();
    let queries = workload.five_queries().unwrap();
    let planner = Planner::with_defaults(&workload.catalog, &workload.stats);
    let mut totals = Vec::new();
    for strategy in [Strategy::Independent, Strategy::GlobalIlp] {
        let report = planner.plan(&queries, strategy).unwrap();
        let mut engine = LocalEngine::new(
            workload.catalog.clone(),
            report.plan,
            EngineConfig::default(),
        );
        let mut generator = TpchGenerator::new(0.002, 123);
        for (relation, tuple) in generator.mixed_stream(&workload, 5_000).unwrap() {
            engine.ingest(relation, tuple).unwrap();
        }
        totals.push(engine.snapshot().total_results());
    }
    assert_eq!(totals[0], totals[1], "strategies disagree on TPC-H results");
}

#[test]
fn synthetic_workloads_share_probe_cost() {
    // Fig. 9a shape at integration level: over a dense pool of 10
    // relations, MQO saves a substantial fraction of the probe cost.
    // Seed chosen for the vendored deterministic RNG (vendor/rand), whose
    // stream differs from upstream rand's StdRng; the threshold is set just
    // under the observed 15.9% so the assertion stays meaningful without
    // being brittle against workload-generator tweaks.
    let mut env = SyntheticEnv::new(SyntheticWorkloadConfig::default(), 8).unwrap();
    let queries = env.random_queries(30, 3).unwrap();
    let planner = Planner::with_defaults(&env.catalog, &env.stats);
    let report = planner.plan(&queries, Strategy::GlobalIlp).unwrap();
    assert!(report.shared_cost <= report.individual_cost);
    let saving = 1.0 - report.shared_cost / report.individual_cost;
    assert!(
        saving > 0.12,
        "expected noticeable sharing on a dense pool, got {:.1}%",
        saving * 100.0
    );
}
