//! Top-level planner with the three strategies compared in the paper's
//! evaluation (Section VII-A).

use crate::candidate::{enumerate_candidates, CandidateSet, PlanSpaceConfig};
use crate::ilp_builder::{build_ilp, extract_selection, Selection};
use crate::topology::{TopologyBuilder, TopologyPlan};
use clash_catalog::{Catalog, Statistics};
use clash_common::{ClashError, QueryId, RelationId, Result};
use clash_ilp::{solve, ModelStats, SolveStatus, SolverConfig};
use clash_query::JoinQuery;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::time::Duration;

/// Planning strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Strategy {
    /// One isolated plan per query, no sharing of stores or probe work
    /// (the FI / SI baselines of Fig. 7).
    Independent,
    /// Per-query optimal plans with syntactically identical sub-plans and
    /// stores shared (the FS / SS baselines of Fig. 7).
    Shared,
    /// Global multi-query optimization through the ILP of Section V
    /// (CLASH-MQO).
    GlobalIlp,
}

impl Strategy {
    /// Short label used in experiment output.
    pub fn label(&self) -> &'static str {
        match self {
            Strategy::Independent => "Independent",
            Strategy::Shared => "Shared",
            Strategy::GlobalIlp => "CMQO",
        }
    }
}

/// Planner configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct PlannerConfig {
    /// Plan-space enumeration limits and cost model.
    pub plan_space: PlanSpaceConfig,
    /// ILP solver limits.
    pub solver: SolverConfig,
}

/// Outcome of a planning run, including the measurements the experiments
/// plot (probe costs, ILP problem sizes, optimization runtime).
#[derive(Debug, Clone)]
pub struct OptimizationReport {
    /// Strategy used.
    pub strategy: Strategy,
    /// The deployable topology.
    pub plan: TopologyPlan,
    /// The chosen probe orders.
    pub selection: Selection,
    /// Probe cost with sharing (each distinct step once) — the "MQO" series.
    pub shared_cost: f64,
    /// Sum of per-query individually-optimal probe costs — the
    /// "Individual" series.
    pub individual_cost: f64,
    /// Number of candidate probe orders enumerated (Fig. 9b / 9d).
    pub num_probe_orders: usize,
    /// ILP model size (only for [`Strategy::GlobalIlp`]).
    pub model_stats: Option<ModelStats>,
    /// ILP solve status (only for [`Strategy::GlobalIlp`]).
    pub solve_status: Option<SolveStatus>,
    /// Wall-clock time spent optimizing (enumeration + ILP).
    pub optimization_time: Duration,
}

/// The planner: holds the inputs shared by all strategies.
#[derive(Debug)]
pub struct Planner<'a> {
    catalog: &'a Catalog,
    stats: &'a Statistics,
    config: PlannerConfig,
}

impl<'a> Planner<'a> {
    /// Creates a planner over a catalog and a statistics snapshot.
    pub fn new(catalog: &'a Catalog, stats: &'a Statistics, config: PlannerConfig) -> Self {
        Planner {
            catalog,
            stats,
            config,
        }
    }

    /// Creates a planner with default configuration.
    pub fn with_defaults(catalog: &'a Catalog, stats: &'a Statistics) -> Self {
        Planner::new(catalog, stats, PlannerConfig::default())
    }

    /// Plans a workload with the given strategy.
    pub fn plan(&self, queries: &[JoinQuery], strategy: Strategy) -> Result<OptimizationReport> {
        if queries.is_empty() {
            return Err(ClashError::Optimization("empty workload".into()));
        }
        let started = std::time::Instant::now();
        let candidates =
            enumerate_candidates(self.catalog, self.stats, queries, &self.config.plan_space);
        let individual_cost: f64 = queries
            .iter()
            .map(|q| candidates.individual_cost(q.id))
            .sum();

        let (selection, model_stats, solve_status) = match strategy {
            Strategy::Independent | Strategy::Shared => {
                (greedy_per_query_selection(&candidates)?, None, None)
            }
            Strategy::GlobalIlp => {
                let artifacts = build_ilp(&candidates);
                let solution = solve(&artifacts.model, self.config.solver);
                let assignment = solution.assignment.as_ref().ok_or_else(|| {
                    ClashError::Optimization(format!(
                        "ILP solve failed with status {:?}",
                        solution.status
                    ))
                })?;
                let selection = extract_selection(&candidates, &artifacts, assignment)?;
                (selection, Some(artifacts.stats), Some(solution.status))
            }
        };

        let share_stores = !matches!(strategy, Strategy::Independent);
        let plan = TopologyBuilder::new(queries, share_stores).build(&selection)?;
        let shared_cost = match strategy {
            // Without sharing, every query pays its own probe cost.
            Strategy::Independent => individual_cost,
            _ => selection.shared_cost,
        };

        Ok(OptimizationReport {
            strategy,
            plan,
            selection,
            shared_cost,
            individual_cost,
            num_probe_orders: candidates.num_probe_orders(),
            model_stats,
            solve_status,
            optimization_time: started.elapsed(),
        })
    }

    /// Plans with every strategy, returning the reports keyed by strategy
    /// label (used by the Fig. 7 experiment driver).
    pub fn plan_all(
        &self,
        queries: &[JoinQuery],
    ) -> Result<HashMap<&'static str, OptimizationReport>> {
        let mut out = HashMap::new();
        for strategy in [Strategy::Independent, Strategy::Shared, Strategy::GlobalIlp] {
            out.insert(strategy.label(), self.plan(queries, strategy)?);
        }
        Ok(out)
    }
}

/// Per-query locally optimal selection: the cheapest decorated candidate
/// for every (query, start) group, ignoring sharing. Used by both the
/// Independent and the Shared baselines (they differ only in whether the
/// topology builder deduplicates stores and prefixes).
///
/// Only base-relation probe orders are considered: the baselines model
/// per-query jobs on engines without intermediate-result materialization
/// (a cascade of symmetric joins), which also keeps their cost directly
/// comparable to [`CandidateSet::individual_cost`].
fn greedy_per_query_selection(candidates: &CandidateSet) -> Result<Selection> {
    let mut selection = Selection::default();
    for ((query, start), cands) in &candidates.per_start {
        let base_only = cands
            .iter()
            .filter(|c| c.stores.iter().all(|s| s.is_base()));
        let best = base_only
            .min_by(|a, b| {
                a.cost
                    .partial_cmp(&b.cost)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .or_else(|| {
                cands.iter().min_by(|a, b| {
                    a.cost
                        .partial_cmp(&b.cost)
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
            })
            .ok_or_else(|| {
                ClashError::Optimization(format!(
                    "no candidate probe order for query {query} start {start}"
                ))
            })?;
        selection.query_orders.push(best.clone());
    }
    selection
        .query_orders
        .sort_by_key(|o| (o.query.0, o.order.start.0));
    selection.recompute_shared_cost();
    Ok(selection)
}

/// Convenience: the set of starting relations a workload needs probe
/// orders for (used in tests and experiment assertions).
pub fn workload_starts(queries: &[JoinQuery]) -> Vec<(QueryId, RelationId)> {
    let mut out = Vec::new();
    for q in queries {
        for r in q.relations.iter() {
            out.push((q.id, r));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use clash_common::Window;
    use clash_query::parse_query;

    fn setup() -> (Catalog, Statistics, Vec<JoinQuery>) {
        let mut catalog = Catalog::new();
        catalog
            .register("R", ["a"], Window::unbounded(), 1)
            .unwrap();
        catalog
            .register("S", ["a", "b"], Window::unbounded(), 2)
            .unwrap();
        catalog
            .register("T", ["b", "c"], Window::unbounded(), 2)
            .unwrap();
        catalog
            .register("U", ["c"], Window::unbounded(), 1)
            .unwrap();
        let mut stats = Statistics::new();
        for m in catalog.iter().map(|m| m.id).collect::<Vec<_>>() {
            stats.set_rate(m, 100.0);
        }
        stats.default_selectivity = 0.01;
        stats.set_selectivity(
            catalog.attr("S", "b").unwrap(),
            catalog.attr("T", "b").unwrap(),
            0.015,
        );
        let q1 = parse_query(&catalog, QueryId::new(0), "q1", "R(a), S(a,b), T(b)").unwrap();
        let q2 = parse_query(&catalog, QueryId::new(1), "q2", "S(b), T(b,c), U(c)").unwrap();
        (catalog, stats, vec![q1, q2])
    }

    #[test]
    fn all_strategies_produce_plans() {
        let (catalog, stats, queries) = setup();
        let planner = Planner::with_defaults(&catalog, &stats);
        let reports = planner.plan_all(&queries).unwrap();
        assert_eq!(reports.len(), 3);
        for (label, report) in &reports {
            assert!(report.plan.num_stores() > 0, "{label} plan has no stores");
            assert!(report.plan.num_rules() > 0);
            assert_eq!(
                report.selection.query_orders.len(),
                workload_starts(&queries).len()
            );
            assert!(report.shared_cost > 0.0);
            assert!(report.individual_cost > 0.0);
            assert!(report.num_probe_orders > 0);
        }
    }

    #[test]
    fn global_ilp_is_no_worse_than_shared_and_independent() {
        let (catalog, stats, queries) = setup();
        let planner = Planner::with_defaults(&catalog, &stats);
        let independent = planner.plan(&queries, Strategy::Independent).unwrap();
        let shared = planner.plan(&queries, Strategy::Shared).unwrap();
        let mqo = planner.plan(&queries, Strategy::GlobalIlp).unwrap();
        assert!(mqo.shared_cost <= shared.shared_cost + 1e-6);
        assert!(shared.shared_cost <= independent.shared_cost + 1e-6);
        // For this workload global optimization is strictly better than
        // independent execution (the S⋈T step is shared).
        assert!(mqo.shared_cost < independent.shared_cost - 1e-6);
        assert!(mqo.model_stats.is_some());
        assert_eq!(mqo.solve_status, Some(SolveStatus::Optimal));
        assert!(independent.model_stats.is_none());
    }

    #[test]
    fn independent_plans_use_more_stores_than_shared() {
        let (catalog, stats, queries) = setup();
        let planner = Planner::with_defaults(&catalog, &stats);
        let independent = planner.plan(&queries, Strategy::Independent).unwrap();
        let shared = planner.plan(&queries, Strategy::Shared).unwrap();
        assert!(independent.plan.num_stores() > shared.plan.num_stores());
        assert!(independent.plan.num_workers() > shared.plan.num_workers());
    }

    #[test]
    fn empty_workload_is_rejected() {
        let (catalog, stats, _) = setup();
        let planner = Planner::with_defaults(&catalog, &stats);
        assert!(planner.plan(&[], Strategy::GlobalIlp).is_err());
    }

    #[test]
    fn single_query_mqo_matches_individual_cost() {
        let (catalog, stats, queries) = setup();
        let planner = Planner::with_defaults(&catalog, &stats);
        let report = planner.plan(&queries[..1], Strategy::GlobalIlp).unwrap();
        // With a single query there is nothing to share across queries, but
        // probe-order prefixes within the query can still be shared, so the
        // shared cost is at most the individual cost.
        assert!(report.shared_cost <= report.individual_cost + 1e-6);
    }

    #[test]
    fn optimization_time_is_recorded() {
        let (catalog, stats, queries) = setup();
        let planner = Planner::with_defaults(&catalog, &stats);
        let report = planner.plan(&queries, Strategy::GlobalIlp).unwrap();
        assert!(report.optimization_time > Duration::ZERO);
    }
}
