//! Stream tuples and (partial) join results.
//!
//! A [`Tuple`] is either a base tuple of one streamed relation or the
//! concatenation of base tuples from several relations (a partial or full
//! join result that travels along a probe order). Either way it carries
//!
//! * the set of base relations it covers,
//! * its attribute values, addressed by fully qualified [`AttrRef`]s, and
//! * a timestamp `τ` — for base tuples the arrival timestamp, for join
//!   results the maximum of the constituents' timestamps (the time at which
//!   the result could first be produced, cf. Figure 1 of the paper).
//!
//! Values are stored behind an `Arc` so that routing a tuple to several
//! stores (sharing between probe orders, broadcasts) only copies a pointer.

use crate::ids::RelationId;
use crate::relation_set::RelationSet;
use crate::schema::{AttrRef, Schema};
use crate::time::Timestamp;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// A stream tuple or partial join result.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Tuple {
    /// Timestamp `τ`: arrival time for base tuples, max constituent
    /// timestamp for join results.
    pub ts: Timestamp,
    /// Wall-clock-like ingestion timestamp of the *latest* constituent,
    /// used by the runtime for end-to-end latency measurements (Fig. 7d).
    pub ingest_ts: Timestamp,
    /// The base relations whose attributes this tuple carries.
    pub relations: RelationSet,
    /// Attribute values.
    values: Arc<Vec<(AttrRef, Value)>>,
}

impl Tuple {
    /// Creates a base tuple of a single relation.
    pub fn base(relation: RelationId, ts: Timestamp, values: Vec<(AttrRef, Value)>) -> Self {
        Tuple {
            ts,
            ingest_ts: ts,
            relations: RelationSet::singleton(relation),
            values: Arc::new(values),
        }
    }

    /// Looks up a value by fully qualified attribute reference.
    pub fn get(&self, attr: &AttrRef) -> Option<&Value> {
        self.values.iter().find(|(a, _)| a == attr).map(|(_, v)| v)
    }

    /// Number of attribute values carried.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Iterates over `(attribute, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&AttrRef, &Value)> {
        self.values.iter().map(|(a, v)| (a, v))
    }

    /// `true` if this tuple covers more than one base relation, i.e. it is a
    /// partial join result rather than an input tuple.
    pub fn is_intermediate(&self) -> bool {
        self.relations.len() > 1
    }

    /// Concatenates two tuples covering disjoint relation sets into a join
    /// result. The caller is responsible for having checked the join
    /// predicate; this method only merges payloads and timestamps.
    ///
    /// Returns `None` when the relation sets overlap (joining a tuple with
    /// itself or with an overlapping partial result would be a logic error
    /// in the probe routing).
    pub fn join(&self, other: &Tuple) -> Option<Tuple> {
        if !self.relations.is_disjoint(&other.relations) {
            return None;
        }
        let mut values = Vec::with_capacity(self.values.len() + other.values.len());
        values.extend(self.values.iter().cloned());
        values.extend(other.values.iter().cloned());
        Some(Tuple {
            ts: self.ts.max(other.ts),
            ingest_ts: self.ingest_ts.max(other.ingest_ts),
            relations: self.relations.union(&other.relations),
            values: Arc::new(values),
        })
    }

    /// Overrides the ingestion timestamp (used by the runtime when a tuple
    /// enters the system, so latency can be measured independently of the
    /// application timestamp).
    pub fn with_ingest_ts(mut self, ingest: Timestamp) -> Tuple {
        self.ingest_ts = ingest;
        self
    }

    /// Approximate memory footprint of the tuple payload in bytes,
    /// counting attribute references and values. Used for the store memory
    /// accounting behind Fig. 7c.
    pub fn approx_size_bytes(&self) -> usize {
        let header = 32;
        let per_entry = std::mem::size_of::<(AttrRef, Value)>();
        header
            + self
                .values
                .iter()
                .map(|(_, v)| per_entry + v.approx_size_bytes())
                .sum::<usize>()
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨τ={} ", self.ts)?;
        for (i, (a, v)) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}={v}")?;
        }
        write!(f, "⟩")
    }
}

/// Builder for base tuples that resolves attribute names through a
/// [`Schema`], so call sites can write `builder.set("custkey", 42)`.
#[derive(Debug)]
pub struct TupleBuilder<'a> {
    schema: &'a Schema,
    ts: Timestamp,
    values: Vec<(AttrRef, Value)>,
}

impl<'a> TupleBuilder<'a> {
    /// Starts building a tuple of the given relation with timestamp `ts`.
    pub fn new(schema: &'a Schema, ts: Timestamp) -> Self {
        TupleBuilder {
            schema,
            ts,
            values: Vec::with_capacity(schema.arity()),
        }
    }

    /// Sets an attribute by name. Unknown names are ignored with a debug
    /// assertion, so typos surface in tests without poisoning release runs.
    pub fn set(mut self, attr: &str, value: impl Into<Value>) -> Self {
        match self.schema.attr_ref(attr) {
            Some(r) => self.values.push((r, value.into())),
            None => debug_assert!(false, "unknown attribute {attr} on {}", self.schema.name),
        }
        self
    }

    /// Finishes the tuple.
    pub fn build(self) -> Tuple {
        Tuple::base(self.schema.relation, self.ts, self.values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::AttrId;

    fn schema_r() -> Schema {
        Schema::new(RelationId::new(0), "R", ["a", "x"])
    }

    fn schema_s() -> Schema {
        Schema::new(RelationId::new(1), "S", ["a", "b"])
    }

    fn r_tuple(a: i64, ts: u64) -> Tuple {
        TupleBuilder::new(&schema_r(), Timestamp::from_millis(ts))
            .set("a", a)
            .set("x", "payload")
            .build()
    }

    fn s_tuple(a: i64, b: i64, ts: u64) -> Tuple {
        TupleBuilder::new(&schema_s(), Timestamp::from_millis(ts))
            .set("a", a)
            .set("b", b)
            .build()
    }

    #[test]
    fn builder_resolves_names() {
        let t = r_tuple(7, 100);
        let a_ref = schema_r().attr_ref("a").unwrap();
        assert_eq!(t.get(&a_ref), Some(&Value::Int(7)));
        assert_eq!(t.arity(), 2);
        assert_eq!(t.relations, RelationSet::singleton(RelationId::new(0)));
        assert!(!t.is_intermediate());
    }

    #[test]
    fn get_unknown_attribute_returns_none() {
        let t = r_tuple(7, 100);
        let foreign = AttrRef::new(RelationId::new(5), AttrId::new(0));
        assert_eq!(t.get(&foreign), None);
    }

    #[test]
    fn join_concatenates_and_takes_max_timestamp() {
        let r = r_tuple(1, 100);
        let s = s_tuple(1, 9, 250);
        let rs = r.join(&s).expect("disjoint relations join");
        assert_eq!(rs.ts, Timestamp::from_millis(250));
        assert_eq!(rs.arity(), 4);
        assert!(rs.is_intermediate());
        assert!(rs.relations.contains(RelationId::new(0)));
        assert!(rs.relations.contains(RelationId::new(1)));
        let b_ref = schema_s().attr_ref("b").unwrap();
        assert_eq!(rs.get(&b_ref), Some(&Value::Int(9)));
        // Join is symmetric in the covered relations.
        let sr = s.join(&r).unwrap();
        assert_eq!(sr.relations, rs.relations);
        assert_eq!(sr.ts, rs.ts);
    }

    #[test]
    fn join_rejects_overlapping_relation_sets() {
        let r1 = r_tuple(1, 100);
        let r2 = r_tuple(2, 200);
        assert!(r1.join(&r2).is_none());
        let s = s_tuple(1, 2, 50);
        let rs = r1.join(&s).unwrap();
        assert!(rs.join(&r2).is_none(), "partial result already covers R");
    }

    #[test]
    fn ingest_timestamp_propagates_through_joins() {
        let r = r_tuple(1, 100).with_ingest_ts(Timestamp::from_millis(1_000));
        let s = s_tuple(1, 2, 250).with_ingest_ts(Timestamp::from_millis(900));
        let rs = r.join(&s).unwrap();
        assert_eq!(rs.ingest_ts, Timestamp::from_millis(1_000));
    }

    #[test]
    fn size_accounting_grows_with_payload() {
        let small = r_tuple(1, 0);
        let joined = small.join(&s_tuple(1, 2, 0)).unwrap();
        assert!(joined.approx_size_bytes() > small.approx_size_bytes());
    }

    #[test]
    fn clone_shares_payload() {
        let t = r_tuple(1, 0);
        let c = t.clone();
        assert_eq!(t, c);
        // Arc payload: cloning does not deep copy (pointer equality).
        assert!(Arc::ptr_eq(&t.values, &c.values));
    }

    #[test]
    fn display_contains_values() {
        let t = r_tuple(3, 5);
        let s = t.to_string();
        assert!(s.contains("=3"));
        assert!(s.contains("τ=5ms"));
    }
}
