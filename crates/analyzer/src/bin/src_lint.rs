//! Repository source lint, run in CI next to clippy.
//!
//! Textual checks that clippy cannot express because they encode *project*
//! conventions rather than language rules:
//!
//! 1. **No SipHash in hot crates** — `crates/common` and `crates/runtime`
//!    sit on the per-tuple path; `std::collections::HashMap`/`HashSet`
//!    default to SipHash, which an earlier perf PR deliberately replaced
//!    with `FxHashMap`/`FxHashSet`. New code must not regress this.
//! 2. **No panics on the tuple hot path** — `store.rs`, `tuple.rs`,
//!    `shard.rs` and `segment.rs` process every stored/probed tuple; an
//!    `unwrap()` or `panic!` there takes a worker thread down mid-stream.
//! 3. **No wall clock off the stream clock** — event time comes from tuple
//!    timestamps and the trace clock; `SystemTime::now` anywhere in
//!    `crates/` silently mixes wall time into windowing or telemetry.
//!
//! Test code is exempt: by repo convention the `#[cfg(test)]` module is
//! the trailing item of a file, so everything from the first `#[cfg(test)]`
//! line to EOF is skipped.
//!
//! Deliberately dependency-free (std only) so it stays runnable even when
//! the workspace itself fails to build.

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Crates whose non-test code must not use SipHash maps.
const HOT_CRATES: &[&str] = &["common", "runtime"];

/// File names (within any hot crate) whose non-test code must not panic.
const HOT_PATH_FILES: &[&str] = &["store.rs", "tuple.rs", "shard.rs", "segment.rs"];

/// Files allowed to keep `std::collections` maps in non-test code, as
/// `crate/relative/path.rs` relative to `crates/`. Add entries only with
/// a comment explaining why SipHash is acceptable there.
const STD_COLLECTIONS_ALLOWLIST: &[&str] = &[
    // Defines FxHashMap/FxHashSet as std's map with the Fx hasher; the
    // std import IS the implementation.
    "common/src/fxhash.rs",
];

struct Finding {
    file: PathBuf,
    line: usize,
    rule: &'static str,
    excerpt: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.excerpt.trim()
        )
    }
}

fn main() -> ExitCode {
    // The binary lives at crates/analyzer; the repo root is two up.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root resolvable");
    let crates = root.join("crates");

    let mut files = Vec::new();
    collect_rs_files(&crates, &mut files);
    files.sort();

    let mut findings = Vec::new();
    for file in &files {
        let Ok(text) = fs::read_to_string(file) else {
            continue;
        };
        let rel = file.strip_prefix(&crates).unwrap_or(file);
        lint_file(rel, &text, &mut findings);
    }

    if findings.is_empty() {
        println!("src_lint: {} files clean", files.len());
        ExitCode::SUCCESS
    } else {
        for f in &findings {
            eprintln!("{f}");
        }
        eprintln!("src_lint: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Index of the first line of the trailing `#[cfg(test)]` region, or
/// `usize::MAX` when the file has none.
fn test_region_start(lines: &[&str]) -> usize {
    lines
        .iter()
        .position(|l| l.trim_start().starts_with("#[cfg(test)]"))
        .unwrap_or(usize::MAX)
}

fn crate_of(rel: &Path) -> &str {
    rel.components()
        .next()
        .and_then(|c| c.as_os_str().to_str())
        .unwrap_or("")
}

fn lint_file(rel: &Path, text: &str, findings: &mut Vec<Finding>) {
    let lines: Vec<&str> = text.lines().collect();
    let test_start = test_region_start(&lines);
    let krate = crate_of(rel);
    let hot_crate = HOT_CRATES.contains(&krate);
    let rel_str = rel.to_string_lossy().replace('\\', "/");
    let allowlisted = STD_COLLECTIONS_ALLOWLIST.contains(&rel_str.as_str());
    let file_name = rel.file_name().and_then(|n| n.to_str()).unwrap_or_default();
    let hot_path = hot_crate && HOT_PATH_FILES.contains(&file_name);
    let is_bin = rel_str.contains("/bin/");

    for (i, line) in lines.iter().enumerate() {
        if i >= test_start {
            break; // trailing test module: exempt
        }
        let trimmed = line.trim_start();
        if trimmed.starts_with("//") {
            continue;
        }
        let lineno = i + 1;

        // Catches both direct paths (`std::collections::HashMap<..>`) and
        // brace imports (`use std::collections::{HashMap, HashSet};`).
        let siphash = line.contains("std::collections::HashMap")
            || line.contains("std::collections::HashSet")
            || (line.contains("std::collections::{")
                && (line.contains("HashMap") || line.contains("HashSet")));
        if hot_crate && !allowlisted && siphash {
            findings.push(Finding {
                file: rel.to_path_buf(),
                line: lineno,
                rule: "no-siphash-in-hot-crates",
                excerpt: line.to_string(),
            });
        }

        if hot_path && (line.contains(".unwrap()") || line.contains("panic!")) {
            findings.push(Finding {
                file: rel.to_path_buf(),
                line: lineno,
                rule: "no-panic-on-hot-path",
                excerpt: line.to_string(),
            });
        }

        // The wall clock is fine in offline binaries (benches, lints) but
        // never in library code, where event time must come from tuple
        // timestamps and the monotonic trace clock.
        if !is_bin && line.contains("SystemTime::now") {
            findings.push(Finding {
                file: rel.to_path_buf(),
                line: lineno,
                rule: "no-wall-clock",
                excerpt: line.to_string(),
            });
        }
    }
}
