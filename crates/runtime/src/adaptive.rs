//! Epoch-based adaptive re-optimization (Section VI).
//!
//! Time is divided into epochs. Statistics gathered during epoch `i` are
//! evaluated at the beginning of epoch `i+1`; if the optimizer then
//! produces a different configuration, it is propagated and becomes active
//! with epoch `i+2` (Fig. 5). Query arrival and expiry are handled the
//! same way: the controller re-plans over its current query set, and
//! stores that no longer serve any query are dropped by the engine when
//! the new plan is installed (reference counting of Section VI-B).

use crate::engine::EngineControl;
use clash_catalog::{Catalog, Statistics};
use clash_common::{ClashError, Epoch, QueryId, Result};
use clash_optimizer::{Planner, PlannerConfig, Strategy, TopologyPlan};
use clash_query::JoinQuery;

/// Controller configuration.
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveConfig {
    /// Planning strategy used at every re-optimization.
    pub strategy: Strategy,
    /// Planner limits.
    pub planner: PlannerConfig,
    /// When `false` the controller never re-plans after the initial
    /// deployment (the "static" baseline of Fig. 8).
    pub enabled: bool,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            strategy: Strategy::GlobalIlp,
            planner: PlannerConfig::default(),
            enabled: true,
        }
    }
}

/// Cost-model output of one controller evaluation (telemetry surface:
/// the epoch driver traces these so `ControllerDecision` events carry
/// the inputs the decision was made on).
#[derive(Debug, Clone, Copy)]
pub struct ControllerDecision {
    /// Epoch whose statistics were evaluated.
    pub epoch: Epoch,
    /// Probe cost of the re-planned configuration (Eq. 1, shared).
    pub shared_cost: f64,
    /// Sum of the queries' individually-optimal costs (baseline).
    pub individual_cost: f64,
    /// Whether the evaluation scheduled a reconfiguration.
    pub scheduled: bool,
    /// Whether this boundary installed a (previously pending) plan.
    pub installed: bool,
}

/// The adaptive controller: owns the query set and prior statistics and
/// re-plans at epoch boundaries.
#[derive(Debug)]
pub struct AdaptiveController {
    catalog: Catalog,
    queries: Vec<JoinQuery>,
    prior: Statistics,
    config: AdaptiveConfig,
    last_planned_epoch: Option<Epoch>,
    /// Epoch at which the last pending configuration was activated:
    /// pending activation is idempotent per epoch. Today's scheduling
    /// (`pending` is always set for `current_epoch.next()` and
    /// `last_planned_epoch` dedupes same-epoch re-plans) cannot produce
    /// a same-epoch double activation on its own; this guard pins that
    /// invariant against timer-driven cadences where the same boundary
    /// fires from more than one caller and epoch gaps are routine.
    last_installed_epoch: Option<Epoch>,
    /// Set by query registration/removal since the last re-planning; a
    /// query-set change forces re-planning even for an epoch without
    /// fresh statistics.
    queries_dirty: bool,
    /// Configuration scheduled to become active at a future epoch.
    pending: Option<(Epoch, TopologyPlan)>,
    /// Number of reconfigurations actually installed.
    pub reconfigurations: usize,
    /// Candidate plans the engine's static analyzer rejected
    /// ([`ClashError::InvalidPlan`]): such a candidate is dropped — not
    /// retried — and the live plan keeps running.
    pub rejected_candidates: usize,
    /// Cost-model output of the most recent full evaluation (telemetry).
    pub last_decision: Option<ControllerDecision>,
}

impl AdaptiveController {
    /// Creates a controller and computes the initial plan for the engine.
    pub fn new(
        catalog: Catalog,
        queries: Vec<JoinQuery>,
        prior: Statistics,
        config: AdaptiveConfig,
    ) -> Result<(Self, TopologyPlan)> {
        let planner = Planner::new(&catalog, &prior, config.planner);
        let report = planner.plan(&queries, config.strategy)?;
        Ok((
            AdaptiveController {
                catalog,
                queries,
                prior,
                config,
                last_planned_epoch: None,
                last_installed_epoch: None,
                queries_dirty: false,
                pending: None,
                reconfigurations: 0,
                rejected_candidates: 0,
                last_decision: None,
            },
            report.plan,
        ))
    }

    /// The current query set.
    pub fn queries(&self) -> &[JoinQuery] {
        &self.queries
    }

    /// Registers a new continuous query; it is incorporated at the next
    /// epoch boundary (Section VI-B).
    pub fn add_query(&mut self, query: JoinQuery) {
        self.queries.retain(|q| q.id != query.id);
        self.queries.push(query);
        self.queries_dirty = true;
    }

    /// Removes a query; stores only it used are dropped at the next
    /// reconfiguration.
    pub fn remove_query(&mut self, query: QueryId) {
        let before = self.queries.len();
        self.queries.retain(|q| q.id != query);
        self.queries_dirty |= self.queries.len() != before;
    }

    /// Called by the driver whenever stream time has advanced to
    /// `current_epoch`. Gathers the statistics of the previous epoch,
    /// re-plans, and schedules / installs new configurations. Returns
    /// `true` when a new configuration was installed into the engine.
    /// Works on any engine exposing [`EngineControl`] — the sequential
    /// `LocalEngine` or the sharded runtime (whose control-plane epoch
    /// driver flushes before the call so the statistics are current).
    ///
    /// Timer-driven cadences make two situations routine that the
    /// ingest-driven cadence never produced, and both are handled here:
    /// *skipped epochs* (a pending plan scheduled for epoch `e+1` may
    /// only become due at some later epoch — it is installed exactly
    /// once, `last_installed_epoch` making the activation idempotent per
    /// epoch) and *empty epochs* (no arrivals were recorded — without
    /// fresh observations re-planning would run on stale statistics and
    /// could flap configurations, so it is skipped unless the query set
    /// changed). A transient install failure ([`EngineControl::install_plan`]
    /// errors) keeps the pending plan so a later epoch can retry, and
    /// propagates the error — except [`ClashError::InvalidPlan`]: a
    /// statically invalid candidate is dropped (counted in
    /// [`Self::rejected_candidates`]) and the live plan keeps running.
    pub fn on_epoch<E: EngineControl>(
        &mut self,
        engine: &mut E,
        current_epoch: Epoch,
    ) -> Result<bool> {
        // Install a configuration that has become due (at most once per
        // distinct epoch).
        let mut installed = false;
        if let Some((effective, plan)) = self.pending.take() {
            if current_epoch >= effective && self.last_installed_epoch != Some(current_epoch) {
                match engine.install_plan(plan.clone()) {
                    Ok(()) => {
                        self.last_installed_epoch = Some(current_epoch);
                        self.reconfigurations += 1;
                        installed = true;
                    }
                    // The candidate itself is broken: retrying it at a
                    // later epoch would fail the same way, so drop it and
                    // keep the live plan (a later evaluation re-plans from
                    // fresh statistics). Transient engine failures keep
                    // the pending plan for a retry instead.
                    Err(ClashError::InvalidPlan(_)) => {
                        self.rejected_candidates += 1;
                    }
                    Err(e) => {
                        self.pending = Some((effective, plan));
                        return Err(e);
                    }
                }
            } else {
                self.pending = Some((effective, plan));
            }
        }
        if !self.config.enabled {
            return Ok(installed);
        }
        if self.last_planned_epoch == Some(current_epoch) {
            return Ok(installed);
        }
        self.last_planned_epoch = Some(current_epoch);
        if current_epoch == Epoch::ZERO {
            return Ok(installed);
        }

        // Evaluate the statistics of the epoch that just finished — but
        // only when there are fresh observations (or the query set
        // changed): epochs skipped over by a timer-driven cadence carry
        // no samples, and re-planning on them would flap configurations.
        let finished = current_epoch.prev();
        if !self.queries_dirty && !engine.stats_collector().has_samples(finished) {
            engine.stats_collector_mut().prune(finished);
            return Ok(installed);
        }
        self.queries_dirty = false;
        let observed = engine.stats_collector().snapshot(finished, &self.prior);
        self.prior = observed.clone();
        let planner = Planner::new(&self.catalog, &observed, self.config.planner);
        let report = planner.plan(&self.queries, self.config.strategy)?;

        // Only schedule a rewiring when the configuration actually differs.
        let scheduled = report.plan != *engine.plan();
        self.last_decision = Some(ControllerDecision {
            epoch: finished,
            shared_cost: report.shared_cost,
            individual_cost: report.individual_cost,
            scheduled,
            installed,
        });
        if scheduled {
            self.pending = Some((current_epoch.next(), report.plan));
        }
        engine.stats_collector_mut().prune(finished);
        Ok(installed)
    }

    /// Whether a reconfiguration is scheduled but not yet active.
    pub fn has_pending(&self) -> bool {
        self.pending.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EngineConfig, LocalEngine};
    use clash_common::{Duration, EpochConfig, Timestamp, TupleBuilder, Window};
    use clash_query::parse_query;

    fn setup() -> (Catalog, Vec<JoinQuery>, Statistics) {
        let mut catalog = Catalog::new();
        catalog.register("R", ["a"], Window::secs(5), 1).unwrap();
        catalog
            .register("S", ["a", "b"], Window::secs(5), 1)
            .unwrap();
        catalog.register("T", ["b"], Window::secs(5), 1).unwrap();
        let mut stats = Statistics::new();
        for m in catalog.iter().map(|m| m.id).collect::<Vec<_>>() {
            stats.set_rate(m, 100.0);
        }
        let q1 = parse_query(&catalog, QueryId::new(0), "q1", "R(a), S(a,b), T(b)").unwrap();
        (catalog, vec![q1], stats)
    }

    fn ingest_some(engine: &mut LocalEngine, catalog: &Catalog, base_ts: u64, n: u64) {
        let r = catalog.relation_by_name("R").unwrap();
        let s = catalog.relation_by_name("S").unwrap();
        for i in 0..n {
            let ts = Timestamp::from_millis(base_ts + i * 7);
            let rt = TupleBuilder::new(&r.schema, ts)
                .set("a", (i % 5) as i64)
                .build();
            engine.ingest(r.id, rt).unwrap();
            let st = TupleBuilder::new(&s.schema, ts)
                .set("a", (i % 5) as i64)
                .set("b", (i % 3) as i64)
                .build();
            engine.ingest(s.id, st).unwrap();
        }
    }

    fn controller_and_engine(enabled: bool) -> (AdaptiveController, LocalEngine, Catalog) {
        let (catalog, queries, stats) = setup();
        let config = AdaptiveConfig {
            enabled,
            ..AdaptiveConfig::default()
        };
        let (controller, plan) =
            AdaptiveController::new(catalog.clone(), queries, stats, config).unwrap();
        let engine = LocalEngine::new(
            catalog.clone(),
            plan,
            EngineConfig {
                epoch: EpochConfig::new(Duration::from_secs(1)),
                ..EngineConfig::default()
            },
        );
        (controller, engine, catalog)
    }

    #[test]
    fn initial_plan_is_produced() {
        let (controller, engine, _) = controller_and_engine(true);
        assert!(engine.plan().num_stores() > 0);
        assert_eq!(controller.queries().len(), 1);
        assert!(!controller.has_pending());
    }

    #[test]
    fn reconfiguration_follows_the_two_epoch_pipeline() {
        let (mut controller, mut engine, catalog) = controller_and_engine(true);
        // Epoch 0: data with very different characteristics than the prior.
        ingest_some(&mut engine, &catalog, 0, 60);
        // Epoch 1 boundary: statistics of epoch 0 evaluated, new plan
        // scheduled for epoch 2 (not yet installed).
        let installed = controller.on_epoch(&mut engine, Epoch(1)).unwrap();
        assert!(!installed);
        // Epoch 2 boundary: if a change was scheduled it becomes active now.
        let had_pending = controller.has_pending();
        let installed = controller.on_epoch(&mut engine, Epoch(2)).unwrap();
        assert_eq!(installed, had_pending);
        assert_eq!(controller.reconfigurations, usize::from(had_pending));
    }

    #[test]
    fn disabled_controller_never_replans() {
        let (mut controller, mut engine, catalog) = controller_and_engine(false);
        ingest_some(&mut engine, &catalog, 0, 60);
        for e in 1..5 {
            let installed = controller.on_epoch(&mut engine, Epoch(e)).unwrap();
            assert!(!installed);
        }
        assert_eq!(controller.reconfigurations, 0);
        assert!(!controller.has_pending());
    }

    #[test]
    fn skipped_epochs_install_pending_exactly_once() {
        // Timer-driven cadences make epoch gaps routine: a pending plan
        // scheduled for epoch 2 may only become due at epoch 5, and the
        // same boundary can fire more than once. Exactly one install may
        // happen, and the gap's empty epochs must not trigger a replan
        // that re-schedules (and later re-installs) a flapping plan.
        let (mut controller, mut engine, catalog) = controller_and_engine(true);
        ingest_some(&mut engine, &catalog, 0, 60);
        controller.on_epoch(&mut engine, Epoch(1)).unwrap();
        controller.on_epoch(&mut engine, Epoch(2)).unwrap();
        let base = controller.reconfigurations;
        // A query-set change guarantees the next evaluation schedules a
        // different plan (its query list differs).
        let q2 = parse_query(&catalog, QueryId::new(1), "q2", "S(b), T(b)").unwrap();
        controller.add_query(q2);
        ingest_some(&mut engine, &catalog, 2_100, 30);
        controller.on_epoch(&mut engine, Epoch(3)).unwrap();
        assert!(controller.has_pending(), "query change must re-plan");
        // Epochs 4..=5 skipped; the boundary at 6 fires twice.
        let first = controller.on_epoch(&mut engine, Epoch(6)).unwrap();
        assert!(first, "due pending plan installs at the first boundary");
        assert_eq!(controller.reconfigurations, base + 1);
        let second = controller.on_epoch(&mut engine, Epoch(6)).unwrap();
        assert!(!second, "same boundary must not install twice");
        assert_eq!(controller.reconfigurations, base + 1);
        // Epoch 5 recorded no samples and the query set is unchanged, so
        // the gap must not have scheduled another reconfiguration.
        assert!(!controller.has_pending(), "empty epochs must not re-plan");
        let third = controller.on_epoch(&mut engine, Epoch(7)).unwrap();
        assert!(!third);
        assert_eq!(controller.reconfigurations, base + 1);
    }

    #[test]
    fn install_failure_keeps_pending_and_propagates() {
        // An engine whose install path fails (dead worker / shut down)
        // must not lose the pending plan: the next epoch retries.
        struct FailingEngine {
            inner: LocalEngine,
            fail_installs: usize,
        }
        impl EngineControl for FailingEngine {
            fn install_plan(&mut self, plan: clash_optimizer::TopologyPlan) -> Result<()> {
                if self.fail_installs > 0 {
                    self.fail_installs -= 1;
                    return Err(clash_common::ClashError::Shutdown);
                }
                self.inner.install_plan(plan)
            }
            fn plan(&self) -> &clash_optimizer::TopologyPlan {
                self.inner.plan()
            }
            fn stats_collector(&self) -> &crate::StatsCollector {
                self.inner.stats_collector()
            }
            fn stats_collector_mut(&mut self) -> &mut crate::StatsCollector {
                self.inner.stats_collector_mut()
            }
        }
        let (mut controller, mut engine, catalog) = controller_and_engine(true);
        ingest_some(&mut engine, &catalog, 0, 60);
        controller.on_epoch(&mut engine, Epoch(1)).unwrap();
        let q2 = parse_query(&catalog, QueryId::new(1), "q2", "S(b), T(b)").unwrap();
        controller.add_query(q2);
        ingest_some(&mut engine, &catalog, 1_100, 30);
        controller.on_epoch(&mut engine, Epoch(2)).unwrap();
        assert!(controller.has_pending(), "query change must re-plan");
        let base = controller.reconfigurations;
        let mut failing = FailingEngine {
            inner: engine,
            fail_installs: 1,
        };
        let err = controller.on_epoch(&mut failing, Epoch(3)).unwrap_err();
        assert_eq!(err, clash_common::ClashError::Shutdown);
        assert!(controller.has_pending(), "failed install keeps the plan");
        assert_eq!(controller.reconfigurations, base);
        let installed = controller.on_epoch(&mut failing, Epoch(4)).unwrap();
        assert!(installed, "next epoch retries the kept pending plan");
        assert_eq!(controller.reconfigurations, base + 1);
    }

    #[test]
    fn invalid_pending_plan_is_dropped_not_retried() {
        // A statically invalid candidate must not poison the controller:
        // the install is rejected by the analyzer gate, the candidate is
        // dropped (not kept pending for doomed retries), the rejection is
        // counted, and the live plan keeps running.
        let (mut controller, mut engine, catalog) = controller_and_engine(true);
        ingest_some(&mut engine, &catalog, 0, 60);
        controller.on_epoch(&mut engine, Epoch(1)).unwrap();
        // Corrupt a copy of the live plan and inject it as pending.
        let mut bad = engine.plan().clone();
        bad.ingest[0].targets[0].store = clash_common::StoreId::new(999);
        controller.pending = Some((Epoch(2), bad));
        let live = engine.plan().clone();
        let installed = controller.on_epoch(&mut engine, Epoch(2)).unwrap();
        assert!(!installed, "rejected candidate must not install");
        assert_eq!(controller.rejected_candidates, 1);
        assert!(!controller.has_pending(), "rejected candidate is dropped");
        assert_eq!(controller.reconfigurations, 0);
        assert_eq!(*engine.plan(), live, "live plan keeps running");
        // The engine remains usable after the rejection.
        ingest_some(&mut engine, &catalog, 2_100, 10);
    }

    #[test]
    fn query_addition_and_removal_change_the_plan() {
        let (mut controller, mut engine, catalog) = controller_and_engine(true);
        ingest_some(&mut engine, &catalog, 0, 30);
        let stores_before = engine.plan().num_stores();
        // Add a second query over S and T only.
        let q2 = parse_query(&catalog, QueryId::new(1), "q2", "S(b), T(b)").unwrap();
        controller.add_query(q2);
        controller.on_epoch(&mut engine, Epoch(1)).unwrap();
        controller.on_epoch(&mut engine, Epoch(2)).unwrap();
        // The new plan answers both queries.
        assert!(engine.plan().queries.len() >= 2 || controller.has_pending());
        // Remove the original query: after two more epochs the plan only
        // needs q2's relations.
        controller.remove_query(QueryId::new(0));
        ingest_some(&mut engine, &catalog, 2_000, 30);
        controller.on_epoch(&mut engine, Epoch(3)).unwrap();
        controller.on_epoch(&mut engine, Epoch(4)).unwrap();
        controller.on_epoch(&mut engine, Epoch(5)).unwrap();
        assert_eq!(engine.plan().queries, vec![QueryId::new(1)]);
        let _ = stores_before;
    }
}
