//! Candidate probe order construction (Algorithm 1 of the paper).
//!
//! A *probe order* `σ_i = ⟨S_i, M_1, M_2, ...⟩` describes how a tuple
//! arriving at relation `S_i` incrementally computes its share of a query's
//! join result: it is first sent to the store of `M_1` for probing, the
//! partial results are forwarded to the store of `M_2`, and so on until all
//! relations of the query are covered. Each probed store `M_j` is a
//! materializable intermediate result ([`crate::Mir`]) — either a base
//! relation or a materialized sub-join like `ST`.
//!
//! Algorithm 1 constructs all candidate probe orders by growing a *head*
//! (the set of relations already covered) with joinable MIRs, thereby never
//! producing a cross product.

use crate::mir::Mir;
use crate::query::JoinQuery;
use clash_common::{QueryId, RelationId, RelationSet};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A candidate probe order for one starting relation of one query (or of a
/// sub-query computing an intermediate result).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ProbeOrder {
    /// The query (or sub-query) this probe order answers.
    pub query: QueryId,
    /// The relation whose arriving tuples initiate this probe order.
    pub start: RelationId,
    /// The stores probed, in order. Each entry is the relation set of the
    /// probed MIR; entries are pairwise disjoint and disjoint from `start`.
    pub steps: Vec<RelationSet>,
}

impl ProbeOrder {
    /// Creates a probe order from raw parts (no validation; use
    /// [`construct_probe_orders`] for validated construction).
    pub fn new(query: QueryId, start: RelationId, steps: Vec<RelationSet>) -> Self {
        ProbeOrder {
            query,
            start,
            steps,
        }
    }

    /// Number of probe steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// `true` when the probe order has no steps (single-relation query).
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The set of relations covered after executing every step.
    pub fn covered(&self) -> RelationSet {
        let mut c = RelationSet::singleton(self.start);
        for s in &self.steps {
            c = c.union(s);
        }
        c
    }

    /// The head (covered relation set) *before* executing step `j`
    /// (0-based): `{start} ∪ steps[0..j]`.
    pub fn head_before(&self, j: usize) -> RelationSet {
        let mut c = RelationSet::singleton(self.start);
        for s in &self.steps[..j.min(self.steps.len())] {
            c = c.union(s);
        }
        c
    }

    /// The head after executing step `j` (0-based).
    pub fn head_after(&self, j: usize) -> RelationSet {
        self.head_before(j + 1)
    }

    /// The probe-order prefixes `⟨start, steps[0..=j]⟩` for every step.
    /// Prefixes identify *steps* in the ILP: equal prefixes (with equal
    /// partitioning, applied later) across different candidates share the
    /// same step variable.
    pub fn prefixes(&self) -> Vec<ProbeOrder> {
        (0..self.steps.len())
            .map(|j| ProbeOrder {
                query: self.query,
                start: self.start,
                steps: self.steps[..=j].to_vec(),
            })
            .collect()
    }

    /// Validates the structural invariants of this probe order against a
    /// query: steps disjoint, joinable with the running head, and the final
    /// head covering exactly the query's relations.
    pub fn is_valid_for(&self, query: &JoinQuery) -> bool {
        if !query.relations.contains(self.start) {
            return false;
        }
        let graph = query.graph();
        let mut head = RelationSet::singleton(self.start);
        for step in &self.steps {
            if step.is_empty()
                || !step.is_subset(&query.relations)
                || !head.is_disjoint(step)
                || !graph.joinable(&head, step)
            {
                return false;
            }
            head = head.union(step);
        }
        head == query.relations
    }
}

impl fmt::Display for ProbeOrder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨{}", self.start)?;
        for s in &self.steps {
            write!(f, ", {s}")?;
        }
        write!(f, "⟩")
    }
}

/// Constructs all candidate probe orders of `query` for the given starting
/// relation, using the provided MIR set as the candidate stores
/// (Algorithm 1, `construct_rec`).
///
/// `max_candidates` caps the number of produced orders (depth-first order);
/// `None` means unlimited. The cap exists because clique-shaped queries
/// have a factorial number of probe orders (Section V-A).
pub fn construct_probe_orders_for_start(
    query: &JoinQuery,
    mirs: &[Mir],
    start: RelationId,
    max_candidates: Option<usize>,
) -> Vec<ProbeOrder> {
    let graph = query.graph();
    let target = query.relations;
    let cap = max_candidates.unwrap_or(usize::MAX);
    let mut result = Vec::new();

    // Single-relation queries have an empty probe order: the arriving tuple
    // is the full result.
    if target.len() == 1 && target.contains(start) {
        result.push(ProbeOrder::new(query.id, start, vec![]));
        return result;
    }

    #[allow(clippy::too_many_arguments)]
    fn recurse(
        query: &JoinQuery,
        graph: &crate::graph::QueryGraph,
        mirs: &[Mir],
        target: RelationSet,
        head: RelationSet,
        steps: &mut Vec<RelationSet>,
        start: RelationId,
        result: &mut Vec<ProbeOrder>,
        cap: usize,
    ) {
        if result.len() >= cap {
            return;
        }
        for mir in mirs {
            let r = mir.relations;
            // Candidate stores must lie inside the query, be disjoint from
            // the head and joinable with it (no cross products).
            if !r.is_subset(&target) || !head.is_disjoint(&r) || !graph.joinable(&head, &r) {
                continue;
            }
            let new_head = head.union(&r);
            steps.push(r);
            if new_head == target {
                result.push(ProbeOrder::new(query.id, start, steps.clone()));
            } else {
                recurse(
                    query, graph, mirs, target, new_head, steps, start, result, cap,
                );
            }
            steps.pop();
            if result.len() >= cap {
                return;
            }
        }
    }

    let mut steps = Vec::new();
    recurse(
        query,
        &graph,
        mirs,
        target,
        RelationSet::singleton(start),
        &mut steps,
        start,
        &mut result,
        cap,
    );
    result.sort();
    result.dedup();
    result
}

/// Constructs the candidate probe orders of a query for *every* starting
/// relation. Returns `(start, candidates)` pairs in relation-id order.
pub fn construct_probe_orders(
    query: &JoinQuery,
    mirs: &[Mir],
    max_candidates_per_start: Option<usize>,
) -> Vec<(RelationId, Vec<ProbeOrder>)> {
    query
        .relations
        .iter()
        .map(|start| {
            (
                start,
                construct_probe_orders_for_start(query, mirs, start, max_candidates_per_start),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mir::enumerate_mirs;
    use crate::predicate::EquiPredicate;
    use clash_common::{AttrId, AttrRef};

    fn attr(rel: u32, a: u32) -> AttrRef {
        AttrRef::new(RelationId::new(rel), AttrId::new(a))
    }

    fn rs(ids: &[u32]) -> RelationSet {
        ids.iter().map(|i| RelationId::new(*i)).collect()
    }

    /// R(a), S(a,b), T(b): relations 0, 1, 2.
    fn linear3() -> JoinQuery {
        JoinQuery::new(
            QueryId::new(0),
            "q1",
            rs(&[0, 1, 2]),
            vec![
                EquiPredicate::new(attr(0, 0), attr(1, 0)),
                EquiPredicate::new(attr(1, 1), attr(2, 0)),
            ],
            None,
        )
        .unwrap()
    }

    #[test]
    fn paper_example_candidates_for_r() {
        // Figure 3: for q1 = R(b),S(b,c),T(c) and start R the candidates are
        // ⟨R,S,T⟩ and ⟨R,ST⟩ (probing T first would be a cross product).
        let q = linear3();
        let mirs = enumerate_mirs(&q, None);
        let orders = construct_probe_orders_for_start(&q, &mirs, RelationId::new(0), None);
        let expected_steps: Vec<Vec<RelationSet>> =
            vec![vec![rs(&[1]), rs(&[2])], vec![rs(&[1, 2])]];
        assert_eq!(orders.len(), 2);
        for e in expected_steps {
            assert!(orders.iter().any(|o| o.steps == e), "missing {:?}", e);
        }
        assert!(orders.iter().all(|o| o.is_valid_for(&q)));
    }

    #[test]
    fn paper_example_candidates_for_middle_relation() {
        // For start S the candidates are ⟨S,T,R⟩, ⟨S,R,T⟩ plus the
        // MIR-using variants ⟨S,RS... ⟩ are impossible (S ∈ RS), but
        // ⟨S, T, R⟩ / ⟨S, R, T⟩ only — S cannot probe ST or RS since they
        // overlap. Figure 3 lists exactly two.
        let q = linear3();
        let mirs = enumerate_mirs(&q, None);
        let orders = construct_probe_orders_for_start(&q, &mirs, RelationId::new(1), None);
        assert_eq!(orders.len(), 2);
        assert!(orders.iter().any(|o| o.steps == vec![rs(&[0]), rs(&[2])]));
        assert!(orders.iter().any(|o| o.steps == vec![rs(&[2]), rs(&[0])]));
    }

    #[test]
    fn all_starts_produce_valid_orders() {
        let q = linear3();
        let mirs = enumerate_mirs(&q, None);
        let by_start = construct_probe_orders(&q, &mirs, None);
        assert_eq!(by_start.len(), 3);
        for (start, orders) in &by_start {
            assert!(!orders.is_empty(), "no candidates for start {start}");
            for o in orders {
                assert_eq!(o.start, *start);
                assert!(o.is_valid_for(&q));
                assert_eq!(o.covered(), q.relations);
            }
        }
    }

    #[test]
    fn prefixes_and_heads() {
        let q = linear3();
        let o = ProbeOrder::new(q.id, RelationId::new(0), vec![rs(&[1]), rs(&[2])]);
        assert_eq!(o.head_before(0), rs(&[0]));
        assert_eq!(o.head_before(1), rs(&[0, 1]));
        assert_eq!(o.head_after(1), rs(&[0, 1, 2]));
        let prefixes = o.prefixes();
        assert_eq!(prefixes.len(), 2);
        assert_eq!(prefixes[0].steps, vec![rs(&[1])]);
        assert_eq!(prefixes[1].steps, vec![rs(&[1]), rs(&[2])]);
        assert_eq!(prefixes[1], o);
    }

    #[test]
    fn validity_rejects_cross_products_and_partial_coverage() {
        let q = linear3();
        // R probing T first is a cross product.
        let bad = ProbeOrder::new(q.id, RelationId::new(0), vec![rs(&[2]), rs(&[1])]);
        assert!(!bad.is_valid_for(&q));
        // Not covering the full query.
        let partial = ProbeOrder::new(q.id, RelationId::new(0), vec![rs(&[1])]);
        assert!(!partial.is_valid_for(&q));
        // Overlapping step.
        let overlap = ProbeOrder::new(q.id, RelationId::new(0), vec![rs(&[0, 1]), rs(&[2])]);
        assert!(!overlap.is_valid_for(&q));
        // Start outside the query.
        let foreign = ProbeOrder::new(q.id, RelationId::new(7), vec![rs(&[1])]);
        assert!(!foreign.is_valid_for(&q));
    }

    #[test]
    fn max_candidates_caps_enumeration() {
        let q = linear3();
        let mirs = enumerate_mirs(&q, None);
        let orders = construct_probe_orders_for_start(&q, &mirs, RelationId::new(0), Some(1));
        assert_eq!(orders.len(), 1);
        assert!(orders[0].is_valid_for(&q));
    }

    #[test]
    fn single_relation_query_has_empty_probe_order() {
        let q = JoinQuery::new(QueryId::new(3), "single", rs(&[4]), vec![], None).unwrap();
        let mirs = enumerate_mirs(&q, None);
        let orders = construct_probe_orders_for_start(&q, &mirs, RelationId::new(4), None);
        assert_eq!(orders.len(), 1);
        assert!(orders[0].is_empty());
        assert_eq!(orders[0].covered(), rs(&[4]));
    }

    #[test]
    fn five_relation_linear_query_counts() {
        // Sanity check on a larger chain: probe orders exist for every
        // start and all are valid; with MIRs the count grows quickly but
        // stays deterministic.
        let relations = rs(&[0, 1, 2, 3, 4]);
        let predicates = (0..4)
            .map(|i| EquiPredicate::new(attr(i, 1), attr(i + 1, 0)))
            .collect();
        let q = JoinQuery::new(QueryId::new(9), "chain5", relations, predicates, None).unwrap();
        let mirs = enumerate_mirs(&q, None);
        let by_start = construct_probe_orders(&q, &mirs, None);
        let a = by_start.iter().map(|(_, o)| o.len()).sum::<usize>();
        let again = construct_probe_orders(&q, &mirs, None)
            .iter()
            .map(|(_, o)| o.len())
            .sum::<usize>();
        assert_eq!(a, again);
        for (_, orders) in by_start {
            assert!(!orders.is_empty());
            assert!(orders.iter().all(|o| o.is_valid_for(&q)));
        }
    }

    #[test]
    fn display_shows_start_and_steps() {
        let o = ProbeOrder::new(QueryId::new(0), RelationId::new(0), vec![rs(&[1, 2])]);
        assert_eq!(o.to_string(), "⟨R0, {R1,R2}⟩");
    }
}
