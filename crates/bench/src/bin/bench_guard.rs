//! Bench regression guard: fails when `BENCH_hotpath.json` reports a
//! micro-row speedup below its checked-in floor (`ci/bench_floors.json`),
//! an ingest allocation count above the allowed ceiling, or a telemetry
//! throughput ratio below the overhead floor.
//!
//! Usage:
//!   cargo run -p clash-bench --bin bench_guard -- \
//!       [report.json] [floors.json] [--allocs-only]
//!
//! Defaults: `BENCH_hotpath.json` and `ci/bench_floors.json` in the
//! current directory. `--allocs-only` skips the timing floors — CI uses
//! it on the freshly generated report of the (noisy, single-core) runner,
//! where only the deterministic allocation metrics are assertable, while
//! the full floors run against the committed report.
//!
//! Parsing is hand-rolled key scanning (the workspace's serde is an
//! offline stub): both files are written by tooling in this repository,
//! so the format is fixed and a strict scanner is sufficient — any
//! missing key is itself an error.

use std::process::ExitCode;

/// Extracts the f64 following `"key":` after position `from`. Returns the
/// value and the position right after it.
fn number_after(text: &str, key: &str, from: usize) -> Option<(f64, usize)> {
    let needle = format!("\"{key}\":");
    let at = text[from..].find(&needle)? + from + needle.len();
    let rest = text[at..].trim_start();
    let consumed = text[at..].len() - rest.len();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    let value: f64 = rest[..end].parse().ok()?;
    Some((value, at + consumed + end))
}

/// Extracts the `speedup` of the named micro row.
fn micro_speedup(report: &str, name: &str) -> Option<f64> {
    let marker = format!("\"name\": \"{name}\"");
    let at = report.find(&marker)?;
    number_after(report, "speedup", at).map(|(v, _)| v)
}

/// Parses the `"micro_speedup_floors"` object into `(name, floor)` pairs.
fn parse_floors(floors: &str) -> Option<Vec<(String, f64)>> {
    let start = floors.find("\"micro_speedup_floors\"")?;
    let open = floors[start..].find('{')? + start;
    let close = floors[open..].find('}')? + open;
    let body = &floors[open + 1..close];
    let mut out = Vec::new();
    for entry in body.split(',') {
        let mut parts = entry.splitn(2, ':');
        let key = parts.next()?.trim().trim_matches('"').to_string();
        let value: f64 = parts.next()?.trim().parse().ok()?;
        out.push((key, value));
    }
    Some(out)
}

fn main() -> ExitCode {
    let mut report_path = String::from("BENCH_hotpath.json");
    let mut floors_path = String::from("ci/bench_floors.json");
    let mut allocs_only = false;
    let mut positional = 0usize;
    for arg in std::env::args().skip(1) {
        if arg == "--allocs-only" {
            allocs_only = true;
        } else {
            match positional {
                0 => report_path = arg,
                _ => floors_path = arg,
            }
            positional += 1;
        }
    }

    let report = match std::fs::read_to_string(&report_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bench_guard: cannot read report {report_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let floors = match std::fs::read_to_string(&floors_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bench_guard: cannot read floors {floors_path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut violations: Vec<String> = Vec::new();
    let mut checks = 0usize;

    if !allocs_only {
        let Some(pairs) = parse_floors(&floors) else {
            eprintln!("bench_guard: malformed micro_speedup_floors in {floors_path}");
            return ExitCode::FAILURE;
        };
        for (name, floor) in pairs {
            checks += 1;
            match micro_speedup(&report, &name) {
                Some(speedup) if speedup >= floor => {
                    println!("ok    {name}: speedup {speedup:.3} >= floor {floor:.3}");
                }
                Some(speedup) => violations.push(format!(
                    "{name}: speedup {speedup:.3} fell below the floor {floor:.3}"
                )),
                None => violations.push(format!("{name}: micro row missing from {report_path}")),
            }
        }
    }

    // Allocation floors: deterministic, so they also hold on CI-fresh
    // reports.
    let allocs_at = report.find("\"allocs\"");
    let optimized = allocs_at
        .and_then(|at| number_after(&report, "optimized_allocs_per_tuple", at).map(|(v, _)| v));
    let reduction = allocs_at.and_then(|at| number_after(&report, "reduction", at).map(|(v, _)| v));
    let max_allocs = number_after(&floors, "max_optimized_allocs_per_tuple", 0).map(|(v, _)| v);
    let min_reduction = number_after(&floors, "min_alloc_reduction", 0).map(|(v, _)| v);
    match (optimized, max_allocs) {
        (Some(got), Some(ceiling)) => {
            checks += 1;
            if got <= ceiling {
                println!("ok    allocs/tuple: {got:.3} <= ceiling {ceiling:.3}");
            } else {
                violations.push(format!(
                    "ingest path allocates {got:.3}/tuple, above the {ceiling:.3} ceiling"
                ));
            }
        }
        _ => violations.push("allocs-per-tuple metric or ceiling missing".to_string()),
    }
    match (reduction, min_reduction) {
        (Some(got), Some(floor)) => {
            checks += 1;
            if got >= floor {
                println!("ok    alloc reduction: {got:.3}x >= floor {floor:.3}x");
            } else {
                violations.push(format!(
                    "alloc reduction {got:.3}x fell below the {floor:.3}x floor"
                ));
            }
        }
        _ => violations.push("alloc reduction metric or floor missing".to_string()),
    }

    // Telemetry overhead: always-on tracing must keep the traced/untraced
    // throughput ratio above the floor (0.97 = at most a 3% hot-path
    // tax). A timing metric, so like the micro floors it is only held
    // against the committed report, not the noisy CI-fresh one.
    if !allocs_only {
        let ratio = report
            .find("\"telemetry\"")
            .and_then(|at| number_after(&report, "throughput_ratio", at).map(|(v, _)| v));
        let floor = number_after(&floors, "min_telemetry_throughput_ratio", 0).map(|(v, _)| v);
        match (ratio, floor) {
            (Some(got), Some(floor)) => {
                checks += 1;
                if got >= floor {
                    println!("ok    telemetry overhead: ratio {got:.3} >= floor {floor:.3}");
                } else {
                    violations.push(format!(
                        "telemetry throughput ratio {got:.3} fell below the {floor:.3} floor \
                         (tracing costs more than {:.1}%)",
                        (1.0 - floor) * 100.0
                    ));
                }
            }
            _ => violations.push("telemetry throughput ratio or floor missing".to_string()),
        }
    }

    if violations.is_empty() {
        println!("bench_guard: {checks} checks passed ({report_path})");
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("bench_guard VIOLATION: {v}");
        }
        ExitCode::FAILURE
    }
}
