//! Store descriptors: which (intermediate) relation a store holds, how it
//! is partitioned and across how many workers.

use clash_common::{AttrRef, QueryId, RelationSet};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Description of a relation store before it is instantiated in a
/// topology: the MIR it holds, its partitioning attribute and parallelism.
///
/// Two probe orders (possibly of different queries) that reference a store
/// with the same descriptor share that store — the cornerstone of the
/// paper's state sharing. The `owner` field is only set by the
/// *Independent* baseline, which deliberately gives every query its own
/// copy of every store (no sharing), mirroring running one isolated
/// topology per query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct StoreDescriptor {
    /// Base relations covered by the stored tuples.
    pub relations: RelationSet,
    /// Partitioning attribute (`None`: single partition / round robin).
    pub partition: Option<AttrRef>,
    /// Number of parallel worker tasks holding partitions of this store.
    pub parallelism: usize,
    /// Owning query for per-query (non-shared) deployments.
    pub owner: Option<QueryId>,
}

impl StoreDescriptor {
    /// A store over `relations` with a single partition.
    pub fn unpartitioned(relations: RelationSet) -> Self {
        StoreDescriptor {
            relations,
            partition: None,
            parallelism: 1,
            owner: None,
        }
    }

    /// A store partitioned by `attr` across `parallelism` workers.
    pub fn partitioned(relations: RelationSet, attr: AttrRef, parallelism: usize) -> Self {
        StoreDescriptor {
            relations,
            partition: Some(attr),
            parallelism: parallelism.max(1),
            owner: None,
        }
    }

    /// Marks the store as privately owned by a query (Independent
    /// baseline).
    pub fn owned_by(mut self, query: QueryId) -> Self {
        self.owner = Some(query);
        self
    }

    /// `true` when the store holds a base input relation rather than an
    /// intermediate join result.
    pub fn is_base(&self) -> bool {
        self.relations.len() == 1
    }

    /// Stable identity used to match stores across re-optimizations so
    /// that their state can be kept (Section VI-A).
    pub fn key(&self) -> String {
        format!(
            "{}|{}|{}|{}",
            self.relations.bits(),
            self.partition
                .map(|a| format!("{a}"))
                .unwrap_or_else(|| "-".into()),
            self.parallelism,
            self.owner.map(|q| q.0 as i64).unwrap_or(-1)
        )
    }

    /// The equivalent cost-model step description.
    pub fn as_partitioned_step(&self) -> clash_cost::PartitionedStep {
        clash_cost::PartitionedStep {
            relations: self.relations,
            partition: self.partition,
            parallelism: self.parallelism,
        }
    }
}

impl fmt::Display for StoreDescriptor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "store{}", self.relations)?;
        if let Some(p) = self.partition {
            write!(f, "[{p}]")?;
        }
        if self.parallelism > 1 {
            write!(f, "x{}", self.parallelism)?;
        }
        if let Some(q) = self.owner {
            write!(f, "@{q}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clash_common::{AttrId, RelationId};

    fn rs(ids: &[u32]) -> RelationSet {
        ids.iter().map(|i| RelationId::new(*i)).collect()
    }

    #[test]
    fn constructors_and_flags() {
        let base = StoreDescriptor::unpartitioned(rs(&[1]));
        assert!(base.is_base());
        assert_eq!(base.parallelism, 1);
        let attr = AttrRef::new(RelationId::new(1), AttrId::new(0));
        let part = StoreDescriptor::partitioned(rs(&[1, 2]), attr, 0);
        assert!(!part.is_base());
        assert_eq!(part.parallelism, 1, "parallelism clamped to >= 1");
        assert_eq!(part.partition, Some(attr));
    }

    #[test]
    fn keys_distinguish_partitioning_parallelism_and_owner() {
        let attr = AttrRef::new(RelationId::new(1), AttrId::new(0));
        let a = StoreDescriptor::unpartitioned(rs(&[1]));
        let b = StoreDescriptor::partitioned(rs(&[1]), attr, 1);
        let c = StoreDescriptor::partitioned(rs(&[1]), attr, 4);
        let d = StoreDescriptor::partitioned(rs(&[1]), attr, 4).owned_by(QueryId::new(2));
        let keys = [a.key(), b.key(), c.key(), d.key()];
        for i in 0..keys.len() {
            for j in (i + 1)..keys.len() {
                assert_ne!(keys[i], keys[j]);
            }
        }
        assert_eq!(a.key(), StoreDescriptor::unpartitioned(rs(&[1])).key());
    }

    #[test]
    fn conversion_to_cost_step() {
        let attr = AttrRef::new(RelationId::new(2), AttrId::new(1));
        let d = StoreDescriptor::partitioned(rs(&[2, 3]), attr, 5);
        let step = d.as_partitioned_step();
        assert_eq!(step.relations, rs(&[2, 3]));
        assert_eq!(step.partition, Some(attr));
        assert_eq!(step.parallelism, 5);
    }

    #[test]
    fn display_is_compact() {
        let attr = AttrRef::new(RelationId::new(1), AttrId::new(0));
        let d = StoreDescriptor::partitioned(rs(&[1, 2]), attr, 3).owned_by(QueryId::new(7));
        let s = d.to_string();
        assert!(s.contains("store"));
        assert!(s.contains("x3"));
        assert!(s.contains("@Q7"));
    }
}
